"""Virtual time and a deterministic discrete-event loop.

The paper's campaign ran for three months on Summit. To regenerate its
campaign-level figures on one machine we run every component against a
:class:`VirtualClock` — a monotonically advancing float of simulated
wall-clock seconds — and drive state changes through an
:class:`EventLoop`, a heap-ordered discrete-event scheduler.

Determinism contract: events firing at the same timestamp are executed
in insertion order (the heap key includes a monotonically increasing
sequence number), so two runs with the same seeds produce identical
histories.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class ClockError(RuntimeError):
    """Raised on attempts to move a clock backwards."""


class VirtualClock:
    """A monotonically advancing simulated wall clock.

    Parameters
    ----------
    start:
        Initial time in seconds (default 0.0).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move the clock forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ClockError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to absolute time ``t``."""
        if t < self._now:
            raise ClockError(f"cannot move clock backwards: {t} < {self._now}")
        self._now = float(t)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.3f})"


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordered by (time, sequence)."""

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        self.cancelled = True


class EventLoop:
    """Heap-ordered discrete-event scheduler over a :class:`VirtualClock`.

    The loop owns the clock: popping an event advances the clock to the
    event's timestamp before invoking its callback. Callbacks may
    schedule further events (at or after the current time).
    """

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule_at(
        self,
        t: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``t``."""
        if t < self.clock.now:
            raise ClockError(
                f"cannot schedule event in the past: {t} < {self.clock.now}"
            )
        ev = Event(time=t, seq=next(self._seq), callback=callback, args=args, label=label)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_in(
        self,
        dt: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` after a delay of ``dt`` seconds."""
        return self.schedule_at(self.clock.now + dt, callback, *args, label=label)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the loop is drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> Optional[Event]:
        """Execute the next live event; return it, or None if drained."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self.clock.advance_to(ev.time)
            ev.callback(*ev.args)
            self._processed += 1
            return ev
        return None

    def run_until(self, t: float, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= t``; advance the clock to ``t``.

        Returns the number of events executed. ``max_events`` is a
        runaway backstop, not a normal control; exceeding it raises.
        """
        n = 0
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > t:
                break
            self.step()
            n += 1
            if max_events is not None and n > max_events:
                raise RuntimeError(f"run_until exceeded max_events={max_events}")
        if t > self.clock.now:
            self.clock.advance_to(t)
        return n

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the heap is empty. Returns events executed."""
        n = 0
        while self.step() is not None:
            n += 1
            if max_events is not None and n > max_events:
                raise RuntimeError(f"run exceeded max_events={max_events}")
        return n
