"""End-to-end HTTP tests: a live daemon driven through ServiceClient.

Covers the acceptance criterion directly: two campaigns from two
tenants run concurrently against one daemon and one shared store with
disjoint keyspaces, and lifecycle verbs move the FSM over HTTP.
"""

import http.client
import json

import pytest

from repro.service import (ControlPlaneServer, ServiceClient, ServiceConfig,
                           ServiceError)

pytestmark = pytest.mark.service

TINY = {"rounds": 2}
LONG = {"rounds": 5000}


@pytest.fixture(scope="module")
def server():
    cfg = ServiceConfig(pool_workers=4, max_campaigns_per_tenant=3,
                        max_campaigns_total=8)
    with ControlPlaneServer(store_url="kv://2", config=cfg) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    host, port = server.address
    return ServiceClient(host, port)


def wait_state(client, campaign_id, *states, timeout=30.0):
    import time
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        snap = client.status(campaign_id)
        if snap["state"] in states:
            return snap
        time.sleep(0.01)
    raise AssertionError(
        f"campaign {campaign_id} never reached {states}; "
        f"stuck at {client.status(campaign_id)['state']}")


class TestDaemonEndpoints:
    def test_health(self, client):
        health = client.health()
        assert health["status"] in ("ok", "degraded")
        assert health["draining"] is False
        assert health["uptime_seconds"] >= 0

    def test_ready(self, client):
        assert client.ready() is True

    def test_info_reports_limits(self, client):
        info = client.info()
        assert info["service"] == "repro-control-plane"
        assert info["limits"]["max_campaigns_per_tenant"] == 3
        assert info["limits"]["pool_workers"] == 4

    def test_daemon_trace_endpoint(self, client):
        spans = client.trace(limit=10)
        assert isinstance(spans, list)
        assert len(spans) <= 10


class TestCampaignLifecycle:
    def test_submit_runs_to_done(self, client):
        snap = client.submit("alice", name="smoke", **TINY)
        assert snap["state"] in ("pending", "running")
        assert snap["store_prefix"].startswith("tenants/alice/")
        final = client.wait(snap["id"], timeout=60)
        assert final["state"] == "done"
        assert final["rounds_done"] == TINY["rounds"]
        assert final["finished_at"] is not None

    def test_pause_resume_cancel_over_http(self, client):
        snap = client.submit("alice", name="steered", **LONG)
        cid = snap["id"]
        wait_state(client, cid, "running")
        assert client.pause(cid)["state"] == "paused"
        # Illegal edge: pausing a paused campaign is a 409.
        with pytest.raises(ServiceError) as err:
            client.pause(cid)
        assert err.value.status == 409
        assert client.resume(cid)["state"] == "running"
        assert client.cancel(cid)["state"] == "cancelled"
        final = client.wait(cid, timeout=60)
        assert final["state"] == "cancelled"
        assert final["rounds_done"] < LONG["rounds"]

    def test_two_tenants_share_one_daemon_disjoint_keyspaces(
            self, server, client):
        """The headline multi-tenancy contract (ISSUE acceptance)."""
        a = client.submit("alice", name="left", rounds=3)
        b = client.submit("bob", name="right", rounds=3)
        # Both make progress concurrently on the one shared daemon.
        fa = client.wait(a["id"], timeout=60)
        fb = client.wait(b["id"], timeout=60)
        assert fa["state"] == fb["state"] == "done"
        # One shared store, two fully disjoint namespaces.
        store = server.registry.store
        keys_a = set(store.keys(f"tenants/alice/{a['id']}/"))
        keys_b = set(store.keys(f"tenants/bob/{b['id']}/"))
        assert keys_a and keys_b
        assert keys_a.isdisjoint(keys_b)
        # Every key either tenant's campaign wrote sits under its prefix.
        assert all(k.startswith(f"tenants/alice/{a['id']}/") for k in keys_a)
        assert all(k.startswith(f"tenants/bob/{b['id']}/") for k in keys_b)

    def test_campaign_listing_filters_by_tenant(self, client):
        snap = client.submit("carol", **TINY)
        client.wait(snap["id"], timeout=60)
        mine = client.campaigns(tenant="carol")
        assert all(c["tenant"] == "carol" for c in mine)
        assert any(c["id"] == snap["id"] for c in mine)
        everyone = client.campaigns()
        assert len(everyone) >= len(mine)

    def test_telemetry_and_trace_scoped_to_campaign(self, client):
        snap = client.submit("alice", name="observed", **TINY)
        client.wait(snap["id"], timeout=60)
        telemetry = client.telemetry(snap["id"])
        assert telemetry["rounds"] == TINY["rounds"]
        assert "counters" in telemetry and "lock_stats" in telemetry
        spans = client.campaign_trace(snap["id"], limit=500)
        names = {s["name"] for s in spans}
        assert "campaign.round" in names
        # Scoping: every root span in the tail carries this campaign id.
        roots = [s for s in spans if s["name"] == "campaign.round"]
        assert roots
        assert all(s["attrs"]["campaign"] == snap["id"] for s in roots)

    def test_delete_purges_and_forgets(self, server, client):
        snap = client.submit("alice", name="temp", **TINY)
        client.wait(snap["id"], timeout=60)
        deleted = client.delete(snap["id"])
        assert deleted["purged_keys"] > 0
        assert server.registry.store.keys(snap["store_prefix"]) == []
        with pytest.raises(ServiceError) as err:
            client.status(snap["id"])
        assert err.value.status == 404

    def test_tenants_endpoint(self, client):
        snap = client.submit("dave", **TINY)
        client.wait(snap["id"], timeout=60)
        rows = {t["tenant"]: t for t in client.tenants()}
        assert rows["dave"]["campaigns"].get("done", 0) >= 1
        assert rows["dave"]["quota"] == 3


class TestErrorSurface:
    def test_unknown_campaign_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.status("c999999")
        assert err.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/v1/nope")
        assert err.value.status == 404

    def test_wrong_verb_is_405_with_allow_header(self, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("DELETE", "/v1/health")
            response = conn.getresponse()
            body = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 405
        assert response.getheader("Allow") == "GET"
        assert body["allow"] == ["GET"]

    def test_bad_submission_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit("No Such Tenant!")
        assert err.value.status == 400

    def test_malformed_json_body_is_400(self, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("POST", "/v1/campaigns", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            body = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert "not valid JSON" in body["error"]

    def test_quota_exhaustion_is_429(self, client):
        held = [client.submit("erin", **LONG) for _ in range(3)]
        try:
            with pytest.raises(ServiceError) as err:
                client.submit("erin", **LONG)
            assert err.value.status == 429
        finally:
            for snap in held:
                client.cancel(snap["id"])
                client.wait(snap["id"], timeout=60)

    def test_bad_query_parameter_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/v1/trace", query={"limit": "soon"})
        assert err.value.status == 400


class TestDrainAndShutdown:
    def test_drain_flips_readiness_and_rejects_submissions(self):
        # A dedicated daemon: draining is one-way, so the module-scoped
        # fixture must not be poisoned.
        with ControlPlaneServer(store_url="kv://1") as srv:
            host, port = srv.address
            c = ServiceClient(host, port)
            running = c.submit("alice", **LONG)
            out = c.drain()
            assert out["draining"] is True
            assert c.ready() is False
            with pytest.raises(ServiceError) as err:
                c.submit("alice", **TINY)
            assert err.value.status == 503
            # The running campaign is not killed by drain.
            assert c.status(running["id"])["state"] in ("running", "paused",
                                                        "pending")

    def test_stop_cancels_running_campaigns(self):
        srv = ControlPlaneServer(store_url="kv://1").start()
        host, port = srv.address
        c = ServiceClient(host, port)
        snap = c.submit("alice", **LONG)
        srv.stop()
        handle = srv.registry._handles[snap["id"]]
        assert handle.state.value == "cancelled"
        assert not handle._thread.is_alive()


@pytest.mark.multi_server
class TestServiceOverNetKV:
    def test_two_tenants_on_one_netkv_cluster(self):
        """Daemon + replicated NetKV backend, end to end over sockets."""
        from repro.datastore.netkv import NetKVServer

        shards = [NetKVServer().start() for _ in range(2)]
        url = "netkv://" + ",".join(
            f"{h}:{p}" for h, p in (s.address for s in shards))
        try:
            with ControlPlaneServer(store_url=url) as srv:
                host, port = srv.address
                c = ServiceClient(host, port)
                a = c.submit("alice", rounds=2)
                b = c.submit("bob", rounds=2)
                assert c.wait(a["id"], timeout=120)["state"] == "done"
                assert c.wait(b["id"], timeout=120)["state"] == "done"
                store = srv.registry.store
                keys_a = set(store.keys(f"tenants/alice/{a['id']}/"))
                keys_b = set(store.keys(f"tenants/bob/{b['id']}/"))
                assert keys_a and keys_b and keys_a.isdisjoint(keys_b)
                assert c.health()["store"]["ok"] is True
        finally:
            for s in shards:
                s.stop()
