"""Capped in-memory candidate queues.

§4.4 Task 2: "we incorporate five in-memory queues in the Patch
Selector for sampling different protein configurations. For
computational viability, each queue is capped at 35,000 patches." A
:class:`CandidateQueue` is one such queue; when full it evicts by the
configured policy so ingest stays O(1) and memory stays bounded.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.sampling.points import Point

__all__ = ["QueueFullPolicy", "CandidateQueue"]


class QueueFullPolicy(enum.Enum):
    DROP_OLDEST = "drop-oldest"
    """Evict the longest-waiting candidate (stale configurations age out)."""

    DROP_NEW = "drop-new"
    """Refuse the incoming candidate (queue is a snapshot of early data)."""


class CandidateQueue:
    """Bounded FIFO of points with O(1) add/remove by id."""

    def __init__(
        self,
        name: str,
        cap: int = 35_000,
        policy: QueueFullPolicy = QueueFullPolicy.DROP_OLDEST,
    ) -> None:
        if cap < 1:
            raise ValueError("cap must be >= 1")
        self.name = name
        self.cap = cap
        self.policy = policy
        self._points: "OrderedDict[str, Point]" = OrderedDict()
        self.dropped = 0
        self.duplicates = 0
        """Silently-ignored re-submissions of an already-queued id —
        distinct from :attr:`dropped` (capacity evictions/refusals) so
        telemetry can report ingest dedup separately."""

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, point_id: str) -> bool:
        return point_id in self._points

    @property
    def full(self) -> bool:
        return len(self._points) >= self.cap

    def add(self, point: Point) -> bool:
        """Ingest a candidate; returns False if it was dropped."""
        if point.id in self._points:
            self.duplicates += 1
            return False  # duplicate frame id: already queued
        if self.full:
            if self.policy is QueueFullPolicy.DROP_NEW:
                self.dropped += 1
                return False
            self._points.popitem(last=False)
            self.dropped += 1
        self._points[point.id] = point
        return True

    def oldest(self) -> Optional[str]:
        """Id of the longest-waiting candidate (eviction victim under
        DROP_OLDEST), or None when empty."""
        return next(iter(self._points), None)

    def get(self, point_id: str) -> Point:
        """The queued candidate with this id (KeyError if absent)."""
        return self._points[point_id]

    def pop(self, point_id: str) -> Point:
        """Remove and return a specific candidate (it was selected)."""
        return self._points.pop(point_id)

    def discard(self, point_id: str) -> None:
        self._points.pop(point_id, None)

    def points(self) -> List[Point]:
        """Snapshot of queued candidates in arrival order."""
        return list(self._points.values())

    def ids(self) -> List[str]:
        return list(self._points.keys())
