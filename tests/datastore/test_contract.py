"""Backend-agnostic contract tests.

Every backend must satisfy the same DataStore semantics — that is what
makes the "single configuration switch" of §4.2 safe. These tests run
identically against all three backends via the parametrized fixture.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datastore import FSStore, KVStore, KeyNotFound, StoreError, TaridxStore

BACKENDS = ["fs", "taridx", "kv"]


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    if request.param == "fs":
        s = FSStore(str(tmp_path / "fs"))
    elif request.param == "taridx":
        s = TaridxStore(str(tmp_path / "tar"))
    else:
        s = KVStore(nservers=3)
    yield s
    s.close()


class TestReadWrite:
    def test_roundtrip(self, store):
        store.write("a/b", b"hello")
        assert store.read("a/b") == b"hello"

    def test_overwrite_wins(self, store):
        store.write("k", b"v1")
        store.write("k", b"v2")
        assert store.read("k") == b"v2"

    def test_empty_payload(self, store):
        store.write("empty", b"")
        assert store.read("empty") == b""

    def test_binary_payload(self, store):
        blob = bytes(range(256)) * 10
        store.write("bin", blob)
        assert store.read("bin") == blob

    def test_missing_key_raises(self, store):
        with pytest.raises(KeyNotFound):
            store.read("nope")

    def test_exists(self, store):
        assert not store.exists("k")
        store.write("k", b"x")
        assert store.exists("k")

    def test_read_many(self, store):
        store.write("a", b"1")
        store.write("b", b"2")
        assert store.read_many(["a", "b"]) == {"a": b"1", "b": b"2"}


class TestDelete:
    def test_delete_removes(self, store):
        store.write("k", b"x")
        store.delete("k")
        assert not store.exists("k")

    def test_delete_missing_raises(self, store):
        with pytest.raises(KeyNotFound):
            store.delete("nope")

    def test_delete_many_counts(self, store):
        store.write("a", b"1")
        store.write("b", b"2")
        assert store.delete_many(["a", "b", "c"]) == 2

    def test_write_after_delete(self, store):
        store.write("k", b"v1")
        store.delete("k")
        store.write("k", b"v2")
        assert store.read("k") == b"v2"


class TestKeysAndNamespaces:
    def test_keys_sorted(self, store):
        for k in ("z", "a", "m"):
            store.write(k, b"x")
        assert store.keys() == ["a", "m", "z"]

    def test_prefix_filter(self, store):
        store.write("rdf/f1", b"x")
        store.write("rdf/f2", b"x")
        store.write("other/f3", b"x")
        assert store.keys("rdf/") == ["rdf/f1", "rdf/f2"]

    def test_empty_store_has_no_keys(self, store):
        assert store.keys() == []

    def test_move_retags_namespace(self, store):
        # The feedback "tagging" operation: move out of the live namespace.
        store.write("rdf/new/f1", b"payload")
        store.move("rdf/new/f1", "rdf/done/f1")
        assert store.keys("rdf/new/") == []
        assert store.read("rdf/done/f1") == b"payload"

    def test_move_missing_raises(self, store):
        with pytest.raises(KeyNotFound):
            store.move("nope", "dst")

    def test_move_overwrites_destination(self, store):
        store.write("src", b"new")
        store.write("dst", b"old")
        store.move("src", "dst")
        assert store.read("dst") == b"new"
        assert not store.exists("src")


class TestKeyValidation:
    @pytest.mark.parametrize(
        "bad", ["", "/abs", "trail/", "a//b", "a/../b", ".", "a/./b"]
    )
    def test_bad_keys_rejected(self, store, bad):
        with pytest.raises(StoreError):
            store.write(bad, b"x")


class TestTypedPayloads:
    def test_npz_roundtrip(self, store):
        arrays = {"x": np.arange(10), "y": np.eye(3)}
        store.write_npz("arr", arrays)
        back = store.read_npz("arr")
        np.testing.assert_array_equal(back["x"], arrays["x"])
        np.testing.assert_array_equal(back["y"], arrays["y"])

    def test_json_roundtrip(self, store):
        obj = {"frames": [1, 2, 3], "tag": "cg", "nested": {"a": 1.5}}
        store.write_json("meta", obj)
        assert store.read_json("meta") == obj


@settings(max_examples=25, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["write", "delete", "move"]),
            st.sampled_from(["k1", "k2", "k3", "ns/k4"]),
            st.binary(max_size=64),
        ),
        max_size=30,
    )
)
def test_property_backends_agree(tmp_path_factory, ops):
    """All three backends produce identical visible state for any op sequence."""
    tmp = tmp_path_factory.mktemp("prop")
    stores = {
        "fs": FSStore(str(tmp / "fs")),
        "tar": TaridxStore(str(tmp / "tar")),
        "kv": KVStore(nservers=2),
    }
    model = {}
    dst_cycle = ["k1", "k2", "k3", "ns/k4"]
    for i, (op, key, payload) in enumerate(ops):
        if op == "write":
            model[key] = payload
            for s in stores.values():
                s.write(key, payload)
        elif op == "delete":
            expect_err = key not in model
            model.pop(key, None)
            for s in stores.values():
                if expect_err:
                    with pytest.raises(KeyNotFound):
                        s.delete(key)
                else:
                    s.delete(key)
        else:  # move
            dst = dst_cycle[i % len(dst_cycle)]
            if dst == key:
                continue
            expect_err = key not in model
            if not expect_err:
                model[dst] = model.pop(key)
            for s in stores.values():
                if expect_err:
                    with pytest.raises(KeyNotFound):
                        s.move(key, dst)
                else:
                    s.move(key, dst)
    for name, s in stores.items():
        assert s.keys() == sorted(model), name
        for k, v in model.items():
            assert s.read(k) == v, name
        s.close()


# ---------------------------------------------------------------------------
# Seeded op-sequence fuzz (chaos-style: replayable from a seed, no
# hypothesis). Covers the batched ops the hypothesis property above
# does not, and extends the backend set to the tiered and networked
# stores — the full "single configuration switch" matrix.
# ---------------------------------------------------------------------------

FUZZ_KEYS = ["k1", "k2", "k3", "ns/k4", "ns/deep/k5", "other/k6"]
FUZZ_OPS = ("write", "write_many", "read", "read_many", "delete",
            "delete_many", "move", "keys", "exists")


def fuzz_ops(seed, nops=120):
    """A deterministic op sequence: (op, keys, payloads) tuples."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(nops):
        op = FUZZ_OPS[int(rng.integers(len(FUZZ_OPS)))]
        nkeys = int(rng.integers(1, 4))
        keys = [FUZZ_KEYS[int(rng.integers(len(FUZZ_KEYS)))] for _ in range(nkeys)]
        payloads = [bytes(rng.integers(0, 256, size=int(rng.integers(0, 48)),
                                       dtype=np.uint8).tolist())
                    for _ in range(nkeys)]
        ops.append((op, keys, payloads))
    return ops


def apply_op(store, model, op, keys, payloads):
    """Apply one op to a live store and the in-memory model, diffing results."""
    if op == "write":
        store.write(keys[0], payloads[0])
        model[keys[0]] = payloads[0]
    elif op == "write_many":
        items = dict(zip(keys, payloads))
        store.write_many(items)
        model.update(items)
    elif op == "read":
        if keys[0] in model:
            assert store.read(keys[0]) == model[keys[0]]
        else:
            with pytest.raises(KeyNotFound):
                store.read(keys[0])
    elif op == "read_many":
        present = [k for k in keys if k in model]
        if len(present) == len(keys):
            got = store.read_many(keys)
            assert got == {k: model[k] for k in keys}
        else:
            assert store.read_present(keys) == {k: model[k] for k in present}
    elif op == "delete":
        if keys[0] in model:
            store.delete(keys[0])
            del model[keys[0]]
        else:
            with pytest.raises(KeyNotFound):
                store.delete(keys[0])
    elif op == "delete_many":
        n = store.delete_many(keys)
        assert n == len({k for k in keys if k in model})
        for k in keys:
            model.pop(k, None)
    elif op == "move":
        src, dst = keys[0], FUZZ_KEYS[hash(keys[0]) % len(FUZZ_KEYS)]
        if src == dst:
            return
        if src in model:
            store.move(src, dst)
            model[dst] = model.pop(src)
        else:
            with pytest.raises(KeyNotFound):
                store.move(src, dst)
    elif op == "keys":
        prefix = ["", "ns/", "other/", "nope/"][len(keys) % 4]
        assert store.keys(prefix) == sorted(
            k for k in model if k.startswith(prefix))
    elif op == "exists":
        assert store.exists(keys[0]) == (keys[0] in model)


def run_fuzz(store, seed):
    model = {}
    for step, (op, keys, payloads) in enumerate(fuzz_ops(seed)):
        try:
            apply_op(store, model, op, keys, payloads)
        except AssertionError as exc:
            raise AssertionError(
                f"seed {seed} step {step} op {op} keys {keys}: {exc}") from exc
    assert store.keys() == sorted(model)
    assert store.read_many(sorted(model)) == model


class TestSeededOpSequenceFuzz:
    @pytest.mark.parametrize("seed", range(5))
    def test_local_backends_match_model(self, tmp_path, seed):
        stores = {
            "fs": FSStore(str(tmp_path / "fs")),
            "taridx": TaridxStore(str(tmp_path / "tar")),
            "kv": KVStore(nservers=3),
        }
        for name, s in stores.items():
            try:
                run_fuzz(s, seed)
            finally:
                s.close()

    @pytest.mark.parametrize("seed", range(5))
    def test_tiered_store_matches_model(self, tmp_path, seed):
        from repro.datastore import TieredStore

        s = TieredStore(fast=KVStore(nservers=2),
                        backing=FSStore(str(tmp_path / "backing")),
                        persist_prefixes=("ns/",))
        try:
            run_fuzz(s, seed)
        finally:
            s.close()

    @pytest.mark.multi_server
    @pytest.mark.parametrize("seed", range(2))
    def test_netkv_cluster_matches_model(self, seed):
        from repro.datastore import (NetKVCluster, NetKVServer, NetKVStore,
                                     TransportConfig)

        servers = [NetKVServer().start() for _ in range(3)]
        cluster = NetKVCluster(
            [srv.address for srv in servers],
            config=TransportConfig(op_timeout=0.5, connect_timeout=0.5,
                                   retries=1, backoff_base=0.01,
                                   backoff_max=0.05),
            replication=2,
        )
        store = NetKVStore(cluster)
        try:
            run_fuzz(store, seed)
        finally:
            store.close()
            for srv in servers:
                srv.stop()
