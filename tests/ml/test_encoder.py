"""Tests for the patch encoder and metric training."""

import numpy as np
import pytest

from repro.ml.encoder import PatchEncoder, train_metric_encoder


class TestPatchEncoder:
    def test_output_shape(self):
        enc = PatchEncoder(input_dim=25, latent_dim=9, hidden=(16,))
        z = enc.encode(np.zeros((10, 25)))
        assert z.shape == (10, 9)

    def test_single_patch(self):
        enc = PatchEncoder(input_dim=25)
        assert enc(np.zeros(25)).shape == (1, 9)

    def test_wrong_input_dim(self):
        enc = PatchEncoder(input_dim=25)
        with pytest.raises(ValueError):
            enc.encode(np.zeros((2, 24)))

    def test_invalid_latent(self):
        with pytest.raises(ValueError):
            PatchEncoder(input_dim=10, latent_dim=0)

    def test_deterministic(self):
        rng1 = np.random.default_rng(11)
        rng2 = np.random.default_rng(11)
        a = PatchEncoder(16, rng=rng1)
        b = PatchEncoder(16, rng=rng2)
        x = np.random.default_rng(0).random((3, 16))
        np.testing.assert_array_equal(a(x), b(x))

    def test_state_roundtrip(self):
        enc = PatchEncoder(16, rng=np.random.default_rng(1))
        other = PatchEncoder(16, rng=np.random.default_rng(2))
        other.load_state_dict(enc.state_dict())
        x = np.random.default_rng(0).random((3, 16))
        np.testing.assert_array_equal(enc(x), other(x))


class TestMetricTraining:
    def _clustered_data(self, rng, n_per=40, dim=16):
        """Two well-separated clusters in input space."""
        a = rng.normal(0.0, 0.3, size=(n_per, dim))
        b = rng.normal(4.0, 0.3, size=(n_per, dim))
        return np.vstack([a, b])

    def test_loss_decreases(self):
        rng = np.random.default_rng(0)
        data = self._clustered_data(rng)
        enc = PatchEncoder(16, latent_dim=4, hidden=(32,), rng=rng)
        report = train_metric_encoder(enc, data, epochs=150, lr=3e-3, rng=rng)
        assert report.improved()
        assert len(report.losses) == 150

    def test_training_separates_clusters_in_latent_space(self):
        rng = np.random.default_rng(1)
        data = self._clustered_data(rng)
        enc = PatchEncoder(16, latent_dim=4, hidden=(32,), rng=rng)
        train_metric_encoder(enc, data, epochs=300, lr=3e-3, rng=rng)
        z = enc.encode(data)
        za, zb = z[:40], z[40:]
        intra = np.linalg.norm(za - za.mean(0), axis=1).mean() + np.linalg.norm(
            zb - zb.mean(0), axis=1
        ).mean()
        inter = np.linalg.norm(za.mean(0) - zb.mean(0))
        assert inter > intra  # clusters are farther apart than they are wide

    def test_needs_two_patches(self):
        enc = PatchEncoder(4)
        with pytest.raises(ValueError):
            train_metric_encoder(enc, np.zeros((1, 4)))

    def test_reproducible(self):
        rng_data = np.random.default_rng(5)
        data = self._clustered_data(rng_data)

        def run():
            enc = PatchEncoder(16, latent_dim=3, hidden=(8,), rng=np.random.default_rng(3))
            train_metric_encoder(enc, data, epochs=20, rng=np.random.default_rng(4))
            return enc.encode(data)

        np.testing.assert_array_equal(run(), run())
