"""Transport-resilience tests: timeouts, retries, reconnects, faults.

These cover the acceptance criteria of the transport hardening work:
a dead peer raises within a bounded multiple of the configured timeout
instead of hanging, a flapping server is absorbed by retries with zero
data loss, and all of it shows up in the telemetry counters.
"""

import contextlib
import socket
import threading
import time

import numpy as np
import pytest

from repro.datastore.base import StoreUnavailable
from repro.datastore.netkv import (
    NetKVClient,
    NetKVCluster,
    NetKVServer,
    NetKVStore,
    TransportConfig,
)
from repro.util.faults import NetworkFaultInjector
from repro.util.rng import RngStream

FAST = TransportConfig(op_timeout=0.5, connect_timeout=0.5, retries=1,
                       backoff_base=0.01, backoff_max=0.05)
NO_RETRY = TransportConfig(op_timeout=0.5, connect_timeout=0.5, retries=0,
                           backoff_base=0.0, backoff_max=0.0)


@contextlib.contextmanager
def black_hole_server():
    """A listener that accepts and reads but never responds — the shape
    of a server that died mid-response with the connection still up."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    listener.settimeout(0.1)
    stop = threading.Event()

    def drain(conn):
        with contextlib.suppress(OSError):
            while conn.recv(4096):
                pass
        with contextlib.suppress(OSError):
            conn.close()

    def accept_loop():
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(target=drain, args=(conn,), daemon=True).start()

    thread = threading.Thread(target=accept_loop, daemon=True)
    thread.start()
    try:
        yield listener.getsockname()
    finally:
        stop.set()
        listener.close()
        thread.join(timeout=2)


def free_port_address():
    """An address nothing is listening on (bound then released)."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()
    probe.close()
    return address


class TestDeadPeerTimeouts:
    def test_get_against_silent_server_times_out(self):
        """A GET whose response never comes must raise StoreUnavailable
        within 2x the configured budget, not hang forever."""
        with black_hole_server() as address:
            client = NetKVClient(address, config=NO_RETRY)
            budget = NO_RETRY.op_timeout
            t0 = time.monotonic()
            with pytest.raises(StoreUnavailable):
                client.get("anything")
            elapsed = time.monotonic() - t0
            assert elapsed < 2 * budget
            assert client.stats.timeouts == 1
            assert client.stats.exhausted == 1
            client.close()

    def test_retries_respect_total_budget(self):
        with black_hole_server() as address:
            client = NetKVClient(address, config=FAST)
            attempts = FAST.retries + 1
            budget = attempts * (FAST.op_timeout + FAST.backoff_max)
            t0 = time.monotonic()
            with pytest.raises(StoreUnavailable):
                client.get("k")
            assert time.monotonic() - t0 < 2 * budget
            assert client.stats.timeouts == attempts
            client.close()

    def test_connection_refused_is_store_unavailable(self):
        client = NetKVClient(free_port_address(), config=FAST)
        t0 = time.monotonic()
        with pytest.raises(StoreUnavailable):
            client.ping()
        assert time.monotonic() - t0 < 2 * (FAST.retries + 1) * (
            FAST.connect_timeout + FAST.backoff_max)
        client.close()

    def test_stale_socket_not_reused_after_failure(self):
        with black_hole_server() as address:
            client = NetKVClient(address, config=NO_RETRY)
            with pytest.raises(StoreUnavailable):
                client.get("k")
            assert client._sock is None  # dropped, not kept for reuse


class TestKillServerMidStream:
    def test_stop_during_session_raises_not_hangs(self):
        server = NetKVServer().start()
        client = NetKVClient(server.address, config=FAST)
        client.set("k", b"v")
        server.stop()
        t0 = time.monotonic()
        with pytest.raises(StoreUnavailable):
            client.get("k")
        assert time.monotonic() - t0 < 2 * (FAST.retries + 1) * (
            FAST.op_timeout + FAST.backoff_max)
        client.close()

    def test_client_survives_server_restart_on_same_port(self):
        server = NetKVServer().start()
        host, port = server.address
        client = NetKVClient(server.address, config=TransportConfig(
            op_timeout=0.5, connect_timeout=0.5, retries=4,
            backoff_base=0.05, backoff_max=0.2))
        client.set("before", b"1")
        server.stop()

        revived = NetKVServer(host=host, port=port).start()
        try:
            # The pooled socket is stale; the client must notice, drop
            # it, and reconnect to the revived shard transparently.
            client.set("after", b"2")
            assert client.get("after") == b"2"
            assert client.stats.reconnects >= 1
            assert client.stats.retries >= 1
        finally:
            client.close()
            revived.stop()


class TestFaultAbsorption:
    def test_cluster_roundtrip_with_dropped_connections(self):
        """Acceptance: with the injector dropping 10% of connections
        (plus mid-request closes to keep connections churning), a full
        cluster workload completes with zero data loss."""
        rng_tree = RngStream(seed=2021)
        servers = [
            NetKVServer(fault_injector=NetworkFaultInjector(
                drop=0.10, close=0.05, rng=rng_tree.child(f"faults-{i}")))
            .start()
            for i in range(3)
        ]
        config = TransportConfig(op_timeout=1.0, connect_timeout=1.0,
                                 retries=8, backoff_base=0.005,
                                 backoff_max=0.05)
        cluster = NetKVCluster([s.address for s in servers], config=config,
                               rng=rng_tree.child("client-jitter"))
        try:
            payloads = {f"frame/{i:04d}": f"data-{i}".encode() * 7
                        for i in range(300)}
            for key, value in payloads.items():
                cluster.set(key, value)
            for key, value in payloads.items():
                assert cluster.get(key) == value  # zero data loss
            assert len(cluster.keys("frame/")) == 300
            injected = sum(s.fault_injector.total_injected() for s in servers)
            assert injected > 0, "injector never fired; test is vacuous"
            assert cluster.stats.retries > 0  # retries absorbed the faults
            assert cluster.stats.exhausted == 0
        finally:
            cluster.close()
            for s in servers:
                s.stop()

    def test_garbage_responses_are_retried(self):
        rng = np.random.default_rng(5)
        server = NetKVServer(fault_injector=NetworkFaultInjector(
            garbage=0.2, rng=rng)).start()
        client = NetKVClient(server.address, config=TransportConfig(
            op_timeout=1.0, connect_timeout=1.0, retries=10,
            backoff_base=0.001, backoff_max=0.01))
        try:
            for i in range(50):
                client.set(f"g{i}", bytes([i]) * 32)
            for i in range(50):
                assert client.get(f"g{i}") == bytes([i]) * 32
            assert server.fault_injector.injected["garbage"] > 0
            assert client.stats.protocol_errors > 0
        finally:
            client.close()
            server.stop()

    def test_delay_faults_slow_but_complete(self):
        server = NetKVServer(fault_injector=NetworkFaultInjector(
            delay=0.3, delay_seconds=0.01, rng=np.random.default_rng(9))).start()
        client = NetKVClient(server.address, config=FAST)
        try:
            for i in range(30):
                client.set(f"d{i}", b"x")
            assert len(client) == 30
            assert server.fault_injector.injected["delay"] > 0
        finally:
            client.close()
            server.stop()


class TestFeedbackDegradesGracefully:
    def test_store_outage_skips_iteration_instead_of_crashing(self):
        from repro.core.feedback import FeedbackManager, StoreFeedbackMixin

        class NullFeedback(StoreFeedbackMixin, FeedbackManager):
            def __init__(self, store):
                FeedbackManager.__init__(self)
                StoreFeedbackMixin.__init__(self, store, "live/", "done/")

            def process(self, items):
                return len(items)

            def report(self, result):
                pass

        store = NetKVStore.connect([free_port_address()], config=NO_RETRY)
        mgr = NullFeedback(store)
        rep = mgr.run_iteration(now=1.0)
        assert rep.error  # outage recorded, not raised
        assert rep.n_items == 0
        assert mgr.reports == [rep]
        store.close()


class TestTelemetryIntegration:
    def test_transport_counters_reach_collect_telemetry(self):
        from repro.app.builder import build_application
        from repro.core.telemetry import collect_telemetry, render_report
        from repro.core.wm import WorkflowConfig

        servers = [NetKVServer().start() for _ in range(2)]
        url = "netkv://" + ",".join(f"{h}:{p}" for h, p in
                                    (s.address for s in servers))
        try:
            app = build_application(
                store_url=url,
                workflow=WorkflowConfig(beads_per_type=8, cg_chunks_per_job=2,
                                        cg_steps_per_chunk=10,
                                        aa_chunks_per_job=1,
                                        aa_steps_per_chunk=10, seed=0),
                seed=0,
            )
            app.run(nrounds=1)
            report = collect_telemetry(app.wm)
            assert report.transport["requests"] > 0
            assert report.transport["bytes_sent"] > 0
            for counter in ("retries", "timeouts", "reconnects", "exhausted"):
                assert counter in report.transport
            assert report.transport["latency"]["count"] > 0
            assert "transport:" in render_report(report)
            app.wm.store.close()
        finally:
            for s in servers:
                s.stop()

    def test_in_process_store_reports_no_transport(self):
        from repro.app.builder import build_application
        from repro.core.telemetry import collect_telemetry

        app = build_application(
            store_url="kv://1",
            workflow=None,
            seed=0,
        )
        assert collect_telemetry(app.wm).transport == {}
