"""Tests for the network-level fault-injection harness."""

import numpy as np
import pytest

from repro.util.faults import FAULT_MODES, NetworkFaultInjector
from repro.util.rng import RngStream


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            NetworkFaultInjector(drop=1.5)
        with pytest.raises(ValueError):
            NetworkFaultInjector(garbage=-0.1)

    def test_delay_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            NetworkFaultInjector(delay=0.1, delay_seconds=-1.0)


class TestFates:
    def test_inactive_injector_never_fires(self):
        inj = NetworkFaultInjector()
        assert all(inj.connection_fate() is None for _ in range(100))
        assert all(inj.request_fate() is None for _ in range(100))
        assert inj.total_injected() == 0

    def test_drop_rate_one_always_drops(self):
        inj = NetworkFaultInjector(drop=1.0)
        assert all(inj.connection_fate() == "drop" for _ in range(20))
        assert inj.injected["drop"] == 20

    def test_request_modes_fire_and_are_counted(self):
        inj = NetworkFaultInjector(delay=1.0, delay_seconds=0.0)
        assert inj.request_fate() == "delay"
        inj2 = NetworkFaultInjector(close=1.0)
        assert inj2.request_fate() == "close"
        inj3 = NetworkFaultInjector(garbage=1.0)
        assert inj3.request_fate() == "garbage"

    def test_most_destructive_mode_wins(self):
        inj = NetworkFaultInjector(delay=1.0, close=1.0, garbage=1.0)
        assert inj.request_fate() == "garbage"
        assert inj.injected["garbage"] == 1
        assert inj.injected["close"] == 0

    def test_approximate_rate(self):
        inj = NetworkFaultInjector(drop=0.3, rng=np.random.default_rng(1))
        fired = sum(inj.connection_fate() == "drop" for _ in range(2000))
        assert 0.25 < fired / 2000 < 0.35


class TestDeterminism:
    def test_same_rng_stream_same_fault_sequence(self):
        def sequence(seed):
            rng = RngStream(seed).child("netkv-faults")
            inj = NetworkFaultInjector(drop=0.2, close=0.1, garbage=0.05, rng=rng)
            conn = [inj.connection_fate() for _ in range(50)]
            reqs = [inj.request_fate() for _ in range(200)]
            return conn, reqs

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)

    def test_reset_clears_counters(self):
        inj = NetworkFaultInjector(drop=1.0)
        inj.connection_fate()
        inj.reset()
        assert inj.total_injected() == 0
        assert set(inj.injected) == set(FAULT_MODES)

    def test_delay_durations_are_byte_identical_per_seed(self):
        # Chaos replays require every injected artifact — not just the
        # fate sequence — to come from the explicit rng stream.
        def durations(seed):
            rng = RngStream(seed).child("netkv-faults")
            inj = NetworkFaultInjector(delay=1.0, delay_seconds=0.25, rng=rng)
            return [inj.delay_duration() for _ in range(50)]

        first = durations(7)
        assert first == durations(7)
        assert first != durations(8)
        assert all(0.125 <= d <= 0.375 for d in first)

    def test_garbage_payloads_are_byte_identical_per_seed(self):
        def payloads(seed):
            rng = RngStream(seed).child("netkv-faults")
            inj = NetworkFaultInjector(garbage=1.0, rng=rng)
            return [inj.garbage_payload() for _ in range(50)]

        first = payloads(7)
        assert first == payloads(7)
        assert first != payloads(8)
        # Still recognizably garbage: the fixed junk preamble survives.
        assert all(p.startswith(NetworkFaultInjector().garbage_bytes)
                   for p in first)
        # The random tail varies between draws from one stream.
        assert len(set(first)) > 1

    def test_interleaved_draw_kinds_stay_deterministic(self):
        def mixed(seed):
            rng = RngStream(seed).child("netkv-faults")
            inj = NetworkFaultInjector(delay=0.3, garbage=0.3,
                                       delay_seconds=0.1, rng=rng)
            out = []
            for i in range(100):
                out.append(inj.request_fate())
                if i % 3 == 0:
                    out.append(inj.delay_duration())
                if i % 5 == 0:
                    out.append(inj.garbage_payload())
            return out

        assert mixed(7) == mixed(7)
