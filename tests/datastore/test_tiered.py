"""Tests for the tiered (RAM-disk + durable) store."""

import numpy as np
import pytest

from repro.datastore import FSStore, KVStore, KeyNotFound
from repro.datastore.tiered import TieredStore


@pytest.fixture
def store(tmp_path):
    s = TieredStore(
        fast=KVStore(nservers=2),
        backing=FSStore(str(tmp_path / "gpfs")),
        persist_prefixes=("ckpt/", "aa-input/"),
    )
    yield s
    s.close()


class TestWriteThrough:
    def test_scratch_data_stays_in_fast_tier(self, store):
        store.write("traj/frame-1", b"big trajectory chunk")
        assert store.fast_keys() == ["traj/frame-1"]
        assert store.backing_keys() == []
        assert not store.durable("traj/frame-1")

    def test_persistent_data_written_through(self, store):
        store.write("ckpt/sim-1", b"checkpoint")
        assert "ckpt/sim-1" in store.fast_keys()
        assert "ckpt/sim-1" in store.backing_keys()
        assert store.durable("ckpt/sim-1")

    def test_multiple_prefixes(self, store):
        store.write("aa-input/s1", b"0.5 GB backed up to GPFS")
        assert store.durable("aa-input/s1")


class TestReadPath:
    def test_reads_prefer_fast_tier(self, store):
        store.write("ckpt/a", b"v-fast")
        # Corrupt the backing copy; the fast tier must win.
        store.backing.write("ckpt/a", b"v-backing")
        assert store.read("ckpt/a") == b"v-fast"

    def test_fallback_to_backing_after_fast_loss(self, store):
        store.write("ckpt/a", b"payload")
        store.fast.delete("ckpt/a")  # RAM disk lost (node reboot)
        assert store.read("ckpt/a") == b"payload"

    def test_promotion_on_read(self, store):
        store.write("ckpt/a", b"payload")
        store.fast.delete("ckpt/a")
        store.read("ckpt/a")
        assert "ckpt/a" in store.fast_keys()

    def test_no_promotion_when_disabled(self, tmp_path):
        s = TieredStore(KVStore(), FSStore(str(tmp_path / "b")),
                        persist_prefixes=("ckpt/",), promote_on_read=False)
        s.write("ckpt/a", b"x")
        s.fast.delete("ckpt/a")
        s.read("ckpt/a")
        assert s.fast_keys() == []

    def test_missing_everywhere_raises(self, store):
        with pytest.raises(KeyNotFound):
            store.read("nope")


class TestEviction:
    def test_evict_frees_fast_tier(self, store):
        for i in range(5):
            store.write(f"traj/f{i}", b"x")
        store.write("ckpt/a", b"keep")
        evicted = store.evict("traj/")
        assert evicted == 5
        assert store.fast_keys("traj/") == []

    def test_persistent_survives_full_eviction(self, store):
        store.write("ckpt/a", b"precious")
        store.write("traj/f", b"scratch")
        store.evict()
        assert store.read("ckpt/a") == b"precious"  # from backing
        with pytest.raises(KeyNotFound):
            store.read("traj/f")  # scratch is gone, by design


class TestDataStoreSemantics:
    def test_keys_merge_both_tiers(self, store):
        store.write("ckpt/a", b"x")
        store.fast.delete("ckpt/a")  # only in backing now
        store.write("traj/b", b"y")  # only in fast
        assert store.keys() == ["ckpt/a", "traj/b"]

    def test_delete_clears_both_tiers(self, store):
        store.write("ckpt/a", b"x")
        store.delete("ckpt/a")
        assert store.keys() == []
        with pytest.raises(KeyNotFound):
            store.delete("ckpt/a")

    def test_move_respects_persistence_of_destination(self, store):
        store.write("traj/f", b"selected frame")
        store.move("traj/f", "aa-input/f")  # promotion to a durable class
        assert store.durable("aa-input/f")
        assert store.keys("traj/") == []

    def test_npz_roundtrip(self, store):
        store.write_npz("ckpt/arr", {"x": np.arange(5)})
        back = store.read_npz("ckpt/arr")
        np.testing.assert_array_equal(back["x"], np.arange(5))

    def test_feedback_manager_over_tiered_store(self, store):
        from repro.app.feedback import CGToContinuumFeedback
        from repro.sims.cg.analysis import RDFResult
        from repro.sims.continuum.ddft import ContinuumConfig, ContinuumSim

        cont = ContinuumSim(ContinuumConfig(grid=16, n_inner=2, n_outer=2,
                                            n_proteins=2, dt=0.25, seed=0))
        edges = np.linspace(0, 3, 11)
        g = np.ones((2, 10)); g[0, :3] = 2.0
        for i in range(5):
            store.write(f"rdf/live/f{i}", RDFResult(f"c{i}", 1.0, edges, g).to_bytes())
        mgr = CGToContinuumFeedback(store, cont)
        rep = mgr.run_iteration()
        assert rep.n_items == 5
        assert store.keys("rdf/live/") == []
