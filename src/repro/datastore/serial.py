"""Byte-stream serialization of standard payloads.

The data interface moves opaque bytes; these helpers give every backend
the same NumPy-archive and JSON encodings so that a payload written
through one backend can be read back through another.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, Mapping

import numpy as np

__all__ = ["npz_to_bytes", "bytes_to_npz", "json_to_bytes", "bytes_to_json"]


def npz_to_bytes(arrays: Mapping[str, np.ndarray]) -> bytes:
    """Encode a dict of arrays as an (uncompressed) ``.npz`` byte stream."""
    buf = io.BytesIO()
    np.savez(buf, **dict(arrays))
    return buf.getvalue()


def bytes_to_npz(data: bytes) -> Dict[str, np.ndarray]:
    """Decode a ``.npz`` byte stream back into a dict of arrays."""
    buf = io.BytesIO(data)
    with np.load(buf) as npz:
        return {name: npz[name] for name in npz.files}


def json_to_bytes(obj: Any) -> bytes:
    """Encode a JSON-serializable object as UTF-8 bytes (stable key order)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def bytes_to_json(data: bytes) -> Any:
    """Decode UTF-8 JSON bytes."""
    return json.loads(data.decode("utf-8"))
