"""ChaosStore: an in-process replicated store the harness can break.

The live NetKV cluster replicates writes across consecutive shards,
acks on the first healthy copy, fails reads over in placement order,
read-repairs stale replicas, and masks deletes with tombstones. Chaos
campaigns need those *semantics* without sockets or threads, so this
store reimplements them deterministically on plain dicts:

- placement: ``key_slot(key) % nshards`` plus ``replication - 1``
  consecutive followers — the same slot math as the KV cluster;
- every write carries a monotonically increasing version; reads return
  the newest copy among healthy, *current* replicas;
- a write that misses a downed replica leaves a hinted-handoff entry;
  a replica with a hint for a key is not current for it and is never
  allowed to serve a stale answer — if no current replica is up the
  read raises ``StoreUnavailable`` instead of silently losing the
  acked value;
- deletes write tombstones (versioned ``None``), which are only
  garbage-collected when every replica is healthy and fully repaired;
- ``shard_up`` triggers anti-entropy repair of all outstanding hints;
- every shard keeps a *durable log* mirroring what its write-ahead log
  would hold (``durable=False`` models memory-only shards);
  :meth:`crash_restart` wipes a shard's memory and replays that log —
  exactly the acked set, like a persistent NetKV shard restarting;
- :meth:`reshard` migrates half of one shard's owned hash slots to its
  successor live, with the handoff copy and hinted leftovers the
  online ``migrate_slots`` path produces.

The store keeps its own *ack log* — the last value (or deletion) each
key was acknowledged with. :meth:`verify_acked` replays the log against
the cluster, which is exactly the "no acked write lost across
failovers" and "tombstones never resurrect deletes" invariants.

Wire-level misbehaviour (delay/garble) comes from a
:class:`~repro.util.faults.NetworkFaultInjector`: faults are modeled as
retried round trips that cost deterministic virtual time (the hardened
transport absorbs them in production), accounted in a
:class:`~repro.datastore.stats.TransportStats` so the existing
telemetry report renders a chaos campaign with zero changes.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.datastore.base import (
    DataStore,
    KeyNotFound,
    StoreError,
    StoreUnavailable,
    validate_key,
)
from repro.datastore.kvstore import key_slot
from repro.datastore.stats import TransportStats
from repro.util.faults import NetworkFaultInjector

__all__ = ["ChaosStore"]

# (version, payload); payload None is a tombstone.
_Entry = Tuple[int, Optional[bytes]]


class ChaosStore(DataStore):
    """Deterministic replicated shard cluster with injectable failures."""

    def __init__(
        self,
        nshards: int = 4,
        replication: int = 2,
        injector: Optional[NetworkFaultInjector] = None,
        rng: Optional[np.random.Generator] = None,
        durable: bool = True,
    ) -> None:
        if nshards < 1:
            raise StoreError("ChaosStore needs at least one shard")
        if not 1 <= replication <= nshards:
            raise StoreError(
                f"replication must be in [1, {nshards}], got {replication}"
            )
        self.nshards = nshards
        self.replication = replication
        self.durable = durable
        self.injector = injector if injector is not None else NetworkFaultInjector(
            rng=rng if rng is not None else np.random.default_rng(0)
        )
        self._shards: List[Dict[str, _Entry]] = [dict() for _ in range(nshards)]
        # What each shard's write-ahead log would replay after a crash:
        # mirrors every entry the shard stores, because a real shard
        # acks only after the WAL fsyncs the record.
        self._log: List[Dict[str, _Entry]] = [dict() for _ in range(nshards)]
        self._down: List[bool] = [False] * nshards
        # Hinted handoff: per shard, the keys whose newest write it missed.
        self._pending: List[Set[str]] = [set() for _ in range(nshards)]
        # Live-migration overrides: slot -> owning shard (default s % n).
        self._slot_owner: Dict[int, int] = {}
        self._version = 0
        self._lock = threading.RLock()
        self.transport_stats = TransportStats()
        self.acked: Dict[str, Optional[bytes]] = {}
        self.fault_counts: Dict[str, int] = {
            "delayed": 0, "garbled": 0, "unavailable": 0,
        }
        self._virtual_delay = 0.0
        # Version each key was last acked at: anti-entropy may install
        # an older copy it finds, but only a copy at least this fresh
        # clears the hint that keeps a shard from serving stale data.
        self._acked_ver: Dict[str, int] = {}

    # --- placement / wire model ------------------------------------------

    def _owner(self, slot: int) -> int:
        return self._slot_owner.get(slot, slot % self.nshards)

    def _replicas(self, key: str) -> List[int]:
        base = self._owner(key_slot(key))
        return [(base + r) % self.nshards for r in range(self.replication)]

    def _store_entry(self, i: int, key: str, entry: _Entry) -> None:
        """All shard writes funnel through here so the durable log
        mirrors exactly what the shard acked."""
        self._shards[i][key] = entry
        if self.durable:
            self._log[i][key] = entry

    def _drop_entry(self, i: int, key: str) -> None:
        self._shards[i].pop(key, None)
        self._log[i].pop(key, None)

    def _ups(self, key: str) -> List[int]:
        return [i for i in self._replicas(key) if not self._down[i]]

    def _touch(self, nbytes: int = 0) -> None:
        """One logical op hits the wire: account it, maybe misbehave."""
        self.transport_stats.note_request(nbytes)
        fate = self.injector.request_fate()
        if fate == "delay":
            self._virtual_delay += self.injector.delay_duration()
            self.fault_counts["delayed"] += 1
        elif fate in ("close", "garbage"):
            # The hardened transport retries these; charge the retry.
            self.transport_stats.note_retry(
                timed_out=(fate == "close"), protocol=(fate == "garbage")
            )
            self._virtual_delay += self.injector.delay_duration()
            self.fault_counts["garbled"] += 1

    def _unavailable(self, key: str, why: str) -> StoreUnavailable:
        self.transport_stats.note_exhausted()
        self.fault_counts["unavailable"] += 1
        return StoreUnavailable(f"chaos store: {why} for key {key!r}")

    # --- core replicated ops (uninstrumented internals) --------------------

    def _put(self, key: str, payload: Optional[bytes]) -> None:
        """Replicate one versioned write (payload None = tombstone).

        Raises ``StoreUnavailable`` (nothing acked, nothing written)
        when no replica is up; otherwise acks and hints the rest.
        """
        ups = self._ups(key)
        if not ups:
            raise self._unavailable(key, "all replicas down")
        self._version += 1
        entry: _Entry = (self._version, payload)
        for i in self._replicas(key):
            if self._down[i]:
                self._pending[i].add(key)
            else:
                self._store_entry(i, key, entry)
                self._pending[i].discard(key)
        self.acked[key] = payload
        self._acked_ver[key] = self._version

    def _lookup(self, key: str, repair: bool = True) -> bytes:
        """Newest live value among healthy *current* replicas.

        A replica with an outstanding hint for ``key`` may be stale and
        never serves it; if no current replica is up the answer is
        unknowable and the read refuses rather than risk returning a
        value older than one already acked.

        ``repair=False`` makes the lookup observation-only: the
        invariant checkers use it so that *verifying* the store cannot
        read-repair away the very divergence being checked for.
        """
        reps = self._replicas(key)
        ups = [i for i in reps if not self._down[i]]
        if not ups:
            raise self._unavailable(key, "all replicas down")
        current = [i for i in ups if key not in self._pending[i]]
        if not current:
            raise self._unavailable(key, "no current replica up")
        best_ver, best_payload, best_shard = -1, None, current[0]
        for i in current:
            entry = self._shards[i].get(key)
            if entry is not None and entry[0] > best_ver:
                best_ver, best_payload, best_shard = entry[0], entry[1], i
        if repair and best_shard != reps[0]:
            self.transport_stats.note_failover()
        if repair and best_ver >= 0:
            # Read repair: refresh hinted/stale healthy replicas in passing.
            for i in ups:
                entry = self._shards[i].get(key)
                if entry is None or entry[0] < best_ver:
                    self._store_entry(i, key, (best_ver, best_payload))
                    self._pending[i].discard(key)
                    self.transport_stats.note_read_repair()
        if best_ver < 0 or best_payload is None:
            raise KeyNotFound(key)
        return best_payload

    # --- DataStore primitives ---------------------------------------------

    def write(self, key: str, data: bytes) -> None:
        with self._lock:
            self._touch(len(data))
            self._put(validate_key(key), bytes(data))

    def read(self, key: str) -> bytes:
        with self._lock:
            value = self._lookup(key)
            self._touch(len(value))
            return value

    def delete(self, key: str) -> None:
        with self._lock:
            self._touch()
            self._lookup(key)  # raises KeyNotFound / StoreUnavailable
            self._put(key, None)

    def move(self, src: str, dst: str) -> None:
        with self._lock:
            self._touch()
            value = self._lookup(src)
            if not self._ups(validate_key(dst)):
                raise self._unavailable(dst, "all replicas down")
            self._put(dst, value)
            self._put(src, None)

    def keys(self, prefix: str = "") -> List[str]:
        with self._lock:
            self._touch()
            # A fully-dead replica window would silently lose its whole
            # key range from the scan — refuse instead (NetKV semantics).
            for base in range(self.nshards):
                group = [(base + r) % self.nshards for r in range(self.replication)]
                if all(self._down[i] for i in group):
                    raise self._unavailable(prefix or "*", "replica group down")
            candidates: Set[str] = set()
            for i, shard in enumerate(self._shards):
                if not self._down[i]:
                    candidates.update(shard)
                candidates.update(self._pending[i])
            out = []
            for key in sorted(candidates):
                if not key.startswith(prefix):
                    continue
                try:
                    self._lookup(key)
                except KeyNotFound:
                    continue
                out.append(key)
            return out

    # --- failure control ----------------------------------------------------

    def shard_down(self, index: int) -> None:
        with self._lock:
            i = index % self.nshards
            if not self._down[i]:
                self._down[i] = True
                self.transport_stats.note_shard_down()

    def shard_up(self, index: int) -> None:
        with self._lock:
            i = index % self.nshards
            if self._down[i]:
                self._down[i] = False
                self.transport_stats.note_shard_up()
            self._repair_all()

    def crash_restart(self, index: int) -> None:
        """Kill one shard process and restart it from its durable log.

        A durable shard replays exactly the acked set — its WAL fsynced
        every record before the ack, so nothing acked is missing and
        nothing unacked resurrects. A memory-only (``durable=False``)
        shard comes back empty with no record of what it lost; its
        peers' copies and hints are the only protection left, which is
        precisely the gap the persistent shards close.
        """
        with self._lock:
            i = index % self.nshards
            if not self._down[i]:
                self.transport_stats.note_shard_down()
            self._shards[i] = dict(self._log[i]) if self.durable else {}
            self._down[i] = False
            self.transport_stats.note_shard_up()
            self._repair_all()

    def reshard(self, index: int) -> int:
        """Live slot migration: move every other hash slot owned by
        shard ``index`` to its successor, handing off the newest copies.

        Only slots currently holding acked keys move (the rest have no
        observable state). Mirrors ``migrate_slots``: cutover flips the
        owner, the handoff writes the freshest copy into the new
        window (hinting shards that are down or donor-less, exactly
        like a write they missed), and out-of-window leftovers are
        pruned. Returns the number of slots moved.
        """
        with self._lock:
            src = index % self.nshards
            dst = (src + 1) % self.nshards
            if dst == src:
                return 0  # single shard: nowhere to move
            owned = sorted({key_slot(k) for k in self.acked
                            if self._owner(key_slot(k)) == src})
            moving = set(owned[::2])
            if not moving:
                return 0
            keys = [k for k in sorted(self.acked) if key_slot(k) in moving]
            # Cutover before the handoff: any write that lands mid-move
            # already routes to the new window, so the versioned copy
            # below can never overtake it.
            for s in moving:
                if dst == s % self.nshards:
                    self._slot_owner.pop(s, None)
                else:
                    self._slot_owner[s] = dst
            for key in keys:
                best: Optional[_Entry] = None
                for j in range(self.nshards):
                    if self._down[j] or key in self._pending[j]:
                        continue
                    entry = self._shards[j].get(key)
                    if entry is not None and (best is None or entry[0] > best[0]):
                        best = entry
                if best is None and self.acked.get(key) is None:
                    continue  # deleted and GC'd: nothing observable moves
                new_window = self._replicas(key)
                for j in new_window:
                    if self._down[j]:
                        self._pending[j].add(key)
                        continue
                    held = self._shards[j].get(key)
                    if best is not None and (held is None or held[0] < best[0]):
                        self._store_entry(j, key, best)
                    elif best is None and held is None:
                        # No healthy donor right now: the shard must not
                        # answer NF for a key an acked write created.
                        self._pending[j].add(key)
                for j in range(self.nshards):
                    if j in new_window:
                        continue
                    # Hints are client-side metadata: an out-of-window
                    # shard will never serve the key, so its hint (and,
                    # when reachable, its copy) can go.
                    self._pending[j].discard(key)
                    if not self._down[j] and key in self._shards[j]:
                        self._drop_entry(j, key)
            self.transport_stats.note_migration(len(moving), len(keys))
            self._repair_all()
            return len(moving)

    def heal_all(self) -> None:
        """Revive every shard and run anti-entropy to convergence."""
        with self._lock:
            for i in range(self.nshards):
                if self._down[i]:
                    self._down[i] = False
                    self.transport_stats.note_shard_up()
            self._repair_all()

    def _repair_all(self) -> None:
        """Drain hinted handoffs wherever a healthy donor exists.

        A donor can be *any* healthy, current shard still holding the
        key — not just a window member: after a reshard the freshest
        copy may sit on an old-window shard, and after a crash-restart
        an out-of-window leftover is still a valid anti-entropy source.
        """
        for i in range(self.nshards):
            if self._down[i]:
                continue
            for key in sorted(self._pending[i]):
                donors = [
                    j for j in range(self.nshards)
                    if j != i and not self._down[j] and key not in self._pending[j]
                ]
                best: Optional[_Entry] = None
                for j in donors:
                    entry = self._shards[j].get(key)
                    if entry is not None and (best is None or entry[0] > best[0]):
                        best = entry
                if best is not None:
                    self._store_entry(i, key, best)
                    # An out-of-window leftover can be older than the
                    # acked version; installing it is fine (versions
                    # order reads) but only a fresh-enough copy makes
                    # the shard current again.
                    if best[0] >= self._acked_ver.get(key, best[0]):
                        self._pending[i].discard(key)
                    self.transport_stats.note_read_repair()
        if not any(self._down) and not any(self._pending):
            self._gc_tombstones()

    def _gc_tombstones(self) -> None:
        """Drop tombstones — only safe once every replica has seen them."""
        for i, shard in enumerate(self._shards):
            for key in [k for k, (_, payload) in shard.items() if payload is None]:
                self._drop_entry(i, key)

    # --- invariant hooks ------------------------------------------------------

    def verify_acked(self, strict: bool = False) -> List[str]:
        """Replay the ack log against the cluster; returns problem strings.

        Non-strict mode skips keys whose replica set is currently
        unreadable (mid-campaign check); strict mode — run after
        :meth:`heal_all` — treats unreadability as a failure too.
        """
        problems: List[str] = []
        with self._lock:
            for key in sorted(self.acked):
                expect = self.acked[key]
                try:
                    got = self._lookup(key, repair=False)
                except KeyNotFound:
                    if expect is not None:
                        problems.append(f"acked write lost: {key}")
                    continue
                except StoreUnavailable:
                    if strict:
                        problems.append(f"unverifiable after heal: {key}")
                    continue
                if expect is None:
                    problems.append(f"tombstone resurrected delete: {key}")
                elif got != expect:
                    problems.append(f"stale read (not the acked value): {key}")
        return problems

    def verify_durable(self) -> List[str]:
        """Check every shard holds at least what its durable log replays.

        The crash-consistency contract: a shard acks only after its WAL
        has the record, so after any number of crash-restarts the shard
        must hold every logged entry at no older a version. Returns
        problem strings (empty for a memory-only store, which promises
        nothing).
        """
        problems: List[str] = []
        with self._lock:
            if not self.durable:
                return problems
            for i in range(self.nshards):
                for key in sorted(self._log[i]):
                    logged = self._log[i][key]
                    held = self._shards[i].get(key)
                    if held is None:
                        problems.append(
                            f"durable log entry missing from shard {i}: {key}")
                    elif held[0] < logged[0]:
                        problems.append(
                            f"shard {i} older than its durable log: {key}")
        return problems

    def replica_health(self) -> Dict[str, object]:
        with self._lock:
            return {
                "replication": self.replication,
                "nshards": self.nshards,
                "up": sum(1 for d in self._down if not d),
                "pending_repairs": sum(len(p) for p in self._pending),
                "slot_overrides": len(self._slot_owner),
                "shards": [
                    {"address": f"chaos://shard{i}", "up": not self._down[i]}
                    for i in range(self.nshards)
                ],
            }

    def drain_virtual_delay(self) -> float:
        """Return and reset virtual seconds lost to injected wire faults."""
        with self._lock:
            t, self._virtual_delay = self._virtual_delay, 0.0
            return t
