"""The invariant catalog: what must stay true, no matter the faults.

Each checker inspects live campaign state and returns
:class:`Violation` rows (empty = healthy). The catalog encodes the
paper's coordination guarantees:

- ``counter_conservation`` — the WM pipeline neither invents nor loses
  work: every patch created is selected, queued, dropped, deduplicated,
  or pruned (same for CG frames). A miscounted pipeline is how stranded
  work hides for weeks at scale.
- ``acked_write_lost`` / ``stale_read`` — a write the store
  acknowledged must stay readable at its acked value across failovers;
  losing one silently corrupts the feedback loops.
- ``tombstone_resurrection`` — a delete the store acknowledged must not
  come back when a dead replica rejoins with its stale copy.
- ``durability_after_crash`` — a shard that crash-restarts must hold at
  least what its durable log replays (every fsynced record, at no older
  a version); ack-after-fsync is the contract the persistent NetKV
  shards make.
- ``jobs_terminal`` — every job the WM launched ends COMPLETED, FAILED
  (retried/abandoned), or CANCELLED; a job in limbo means the tracker
  leaks resources forever.
- ``selector_equivalence`` — checkpoint + restore reproduces the
  selectors *exactly* (candidates, histograms, rng state), so a
  restarted campaign selects the same configurations the dead one
  would have.
- ``trace_tree`` — the exported span tree is well-formed: no orphan
  parents, no dropped spans, monotone sequence numbers, t1 >= t0. The
  observability layer is only trustworthy if chaos cannot corrupt it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sampling.persistence import binned_state, fps_state

__all__ = ["Violation", "InvariantSuite", "selector_equivalence"]

# Terminal job states by name (avoids importing JobState at check time).
_TERMINAL = {"COMPLETED", "FAILED", "CANCELLED"}


@dataclass(frozen=True)
class Violation:
    """One invariant breach, attributed to a campaign round."""

    invariant: str
    round: int
    detail: str

    def to_json(self) -> Dict[str, object]:
        return {"invariant": self.invariant, "round": self.round,
                "detail": self.detail}

    @classmethod
    def from_json(cls, row: Dict[str, object]) -> "Violation":
        return cls(invariant=str(row["invariant"]), round=int(row["round"]),
                   detail=str(row["detail"]))


def selector_equivalence(old_wm, new_wm, round_no: int) -> List[Violation]:
    """Compare selector state across a checkpoint/restore handover.

    The persistence layer's own state dicts are the comparison basis:
    they capture candidates (ids + coords, in order), per-queue
    drop/duplicate counters, the binned histogram, and the binned
    sampler's rng state — so equality here means the restored WM will
    produce the *same id sequence* the old one would have.
    """
    out: List[Violation] = []
    if fps_state(old_wm.patch_selector) != fps_state(new_wm.patch_selector):
        out.append(Violation(
            "selector_equivalence", round_no,
            "patch selector state diverged across checkpoint/restore"))
    if binned_state(old_wm.frame_selector) != binned_state(new_wm.frame_selector):
        out.append(Violation(
            "selector_equivalence", round_no,
            "frame selector state diverged across checkpoint/restore"))
    return out


class InvariantSuite:
    """Runs the catalog after every round and once more at campaign end."""

    def check_round(self, campaign, round_no: int) -> List[Violation]:
        out: List[Violation] = []
        out += self._counter_conservation(campaign.wm, round_no)
        out += self._acked_state(campaign.store, round_no, strict=False)
        out += self._durability(campaign.store, round_no)
        out += self._trace_tree(campaign.tracer, round_no)
        return out

    def check_final(self, campaign, round_no: int) -> List[Violation]:
        """End-of-campaign pass: the store has been healed and the
        adapter drained, so nothing is excusably unverifiable."""
        out: List[Violation] = []
        out += self._counter_conservation(campaign.wm, round_no)
        out += self._acked_state(campaign.store, round_no, strict=True)
        out += self._durability(campaign.store, round_no)
        out += self._jobs_terminal(campaign, round_no)
        out += self._trace_tree(campaign.tracer, round_no)
        return out

    # --- individual checkers ----------------------------------------------

    def _counter_conservation(self, wm, round_no: int) -> List[Violation]:
        out: List[Violation] = []
        c = wm.counters_snapshot()
        created = c["patches"]
        accounted = (c["patches_selected"] + wm.patch_selector.ncandidates()
                     + wm.patch_selector.dropped()
                     + wm.patch_selector.duplicates() + c["patches_pruned"])
        if created != accounted:
            out.append(Violation(
                "counter_conservation", round_no,
                f"patches: created={created} != selected+queued+dropped+"
                f"duplicates+pruned={accounted}"))
        seen = c["frames_seen"]
        accounted = (c["frames_selected"] + wm.frame_selector.ncandidates()
                     + wm.frame_selector.duplicates + c["frames_pruned"])
        if seen != accounted:
            out.append(Violation(
                "counter_conservation", round_no,
                f"frames: seen={seen} != selected+queued+duplicates+"
                f"pruned={accounted}"))
        return out

    def _acked_state(self, store, round_no: int, strict: bool) -> List[Violation]:
        out: List[Violation] = []
        for problem in store.verify_acked(strict=strict):
            if "tombstone" in problem:
                name = "tombstone_resurrection"
            elif "stale read" in problem:
                name = "stale_read"
            else:
                name = "acked_write_lost"
            out.append(Violation(name, round_no, problem))
        return out

    def _durability(self, store, round_no: int) -> List[Violation]:
        """Shards must hold at least what their durable log replays.

        ``hasattr``-guarded so the suite also runs against stores with
        no durability promise (they simply have nothing to check)."""
        if not hasattr(store, "verify_durable"):
            return []
        return [Violation("durability_after_crash", round_no, problem)
                for problem in store.verify_durable()]

    def _jobs_terminal(self, campaign, round_no: int) -> List[Violation]:
        out: List[Violation] = []
        for name, tracker in campaign.wm.trackers.items():
            if tracker.nactive():
                out.append(Violation(
                    "jobs_terminal", round_no,
                    f"{name}: {tracker.nactive()} job(s) never reached a "
                    f"terminal state (tags {sorted(tracker.tags_active())})"))
        for record in campaign.adapter.records():
            if record.state.name not in _TERMINAL:
                out.append(Violation(
                    "jobs_terminal", round_no,
                    f"job {record.spec.tag or record.job_id} stuck in "
                    f"{record.state.name}"))
        return out

    def _trace_tree(self, tracer, round_no: int) -> List[Violation]:
        out: List[Violation] = []
        if tracer is None:
            return out
        rows = tracer.rows()
        if tracer.dropped:
            out.append(Violation(
                "trace_tree", round_no,
                f"{tracer.dropped} span(s) dropped from the ring buffer"))
        ids = {row["span"] for row in rows}
        seqs = [row["seq"] for row in rows]
        if len(set(seqs)) != len(seqs):
            out.append(Violation("trace_tree", round_no,
                                 "duplicate span sequence numbers"))
        if seqs != sorted(seqs):
            out.append(Violation("trace_tree", round_no,
                                 "span rows are not in sequence order"))
        # A check may run while ancestor spans are still open (they have
        # no row yet); those are legitimate parents, not orphans.
        open_parents = {span.span_id for span in _open_spans(tracer)}
        for row in rows:
            parent: Optional[int] = row["parent"]
            if parent is not None and parent not in ids and parent not in open_parents:
                out.append(Violation(
                    "trace_tree", round_no,
                    f"span {row['span']} ({row['name']}) has orphan parent "
                    f"{parent}"))
            if row["t1"] < row["t0"]:
                out.append(Violation(
                    "trace_tree", round_no,
                    f"span {row['span']} ({row['name']}) ends before it "
                    f"starts ({row['t1']} < {row['t0']})"))
        return out


def _open_spans(tracer) -> List[object]:
    """Spans still open on the checking thread's context stack."""
    return list(getattr(tracer._local, "stack", None) or [])
