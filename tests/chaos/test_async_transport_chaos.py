"""Seeded FaultSchedule campaign against the *async* NetKV transport.

The chaos harness normally drives the simulated ChaosStore on a virtual
clock. This suite points the same fault-schedule DSL at live asyncio
servers instead: ``shard_down``/``shard_up`` stop and rebind real
event-loop shards, ``delay``/``garble`` set rates on each shard's
:class:`~repro.util.faults.NetworkFaultInjector`. Two invariants from
CHAOS.md must survive the transport rewrite:

- **durability** — every write the client saw acked reads back byte
  for byte once the campaign heals, through replication failover;
- **replay** — two campaigns from the same seed ack the same key set
  and end in the identical surviving key->value state (same digest),
  while a different seed produces a different state.

Events are pinned to *round indices* rather than virtual seconds: a
round here is one batch of writes against the live cluster, so
``at=2`` means "before the third write batch".
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Optional

import pytest

from repro.chaos.schedule import FaultSchedule
from repro.datastore.base import StoreError
from repro.datastore.netkv import NetKVServer, NetKVStore, TransportConfig
from repro.util.faults import NetworkFaultInjector
from repro.util.rng import RngStream

pytestmark = [pytest.mark.multi_server, pytest.mark.async_transport,
              pytest.mark.timeout(90)]

NSHARDS = 3
ROUNDS = 8
KEYS_PER_ROUND = 12


def _schedule() -> FaultSchedule:
    """One kill-heavy campaign: congestion, a shard loss under garble,
    a second loss after the first revives, then heal everything."""
    return (FaultSchedule()
            .delay(at=1, rate=0.2)
            .shard_down(at=2, shard=1)
            .garble(at=3, rate=0.25)
            .shard_up(at=4, shard=1)
            .shard_down(at=5, shard=2)
            .heal(at=6)
            .shard_up(at=7, shard=2))


def _run_campaign(seed: int) -> Dict[str, object]:
    stream = RngStream(seed)
    injectors = [
        NetworkFaultInjector(rng=stream.child(f"shard{i}"),
                             delay_seconds=0.002)
        for i in range(NSHARDS)
    ]
    servers: List[Optional[NetKVServer]] = [
        NetKVServer(fault_injector=injectors[i]).start()
        for i in range(NSHARDS)
    ]
    addresses = [srv.address for srv in servers]
    payload_rng = stream.child("payloads")
    # Generous retry budget: scheduled faults must degrade the campaign,
    # not the ack contract. Replication 2 keeps every key writable with
    # one shard down.
    config = TransportConfig(retries=8, backoff_base=0.001,
                             backoff_max=0.01, op_timeout=5.0,
                             connect_timeout=2.0)
    store = NetKVStore.connect(addresses, config=config, replication=2,
                               probe_cooldown=0.05, transport="async")
    schedule = _schedule()
    acked: Dict[str, bytes] = {}

    def scrub() -> None:
        # Anti-entropy pass after a revival: a shard that comes back at
        # the same address starts *empty*, so until something re-reads
        # its keys the cluster is one more failure away from real data
        # loss. Reading every acked key triggers the cluster's read
        # repair, restoring the replication factor — the scrub an
        # operator runs after failover, and the reason the schedule may
        # kill a *second* shard later without losing acked writes.
        # Repairs only land once the health prober has re-marked the
        # shard up, so sweep until the cluster is whole and a full pass
        # repairs nothing.
        for _ in range(5):
            time.sleep(2 * 0.05)  # let the probe cooldown lapse
            before = store.transport_stats.as_dict()["read_repairs"]
            for key in sorted(acked):
                store.read(key)
            health = store.replica_health()
            stable = (health["up"] == health["nshards"]
                      and store.transport_stats.as_dict()["read_repairs"]
                      == before)
            if stable:
                return
        raise AssertionError("scrub did not converge in 5 passes")

    try:
        for rnd in range(ROUNDS):
            for event in schedule:
                if int(event.at) != rnd:
                    continue
                if event.kind == "shard_down":
                    idx = int(event.arg) % NSHARDS
                    if servers[idx] is not None:
                        servers[idx].stop()
                        servers[idx] = None
                elif event.kind == "shard_up":
                    idx = int(event.arg) % NSHARDS
                    if servers[idx] is None:
                        host, port = addresses[idx]
                        servers[idx] = NetKVServer(
                            host=host, port=port,
                            fault_injector=injectors[idx]).start()
                        scrub()
                elif event.kind == "delay":
                    for inj in injectors:
                        inj.rates["delay"] = event.arg
                elif event.kind == "garble":
                    for inj in injectors:
                        inj.rates["garbage"] = event.arg
                elif event.kind == "heal":
                    for inj in injectors:
                        inj.rates.update(drop=0.0, delay=0.0,
                                         close=0.0, garbage=0.0)
            for i in range(KEYS_PER_ROUND):
                key = f"chaos/r{rnd}/k{i}"
                size = int(payload_rng.integers(8, 200))
                value = payload_rng.bytes(size)
                try:
                    store.write(key, value)
                except StoreError:
                    continue  # unacked: allowed to be lost
                acked[key] = value

        # Campaign over: revive any shard the schedule left down, then
        # check the invariants against the healed cluster.
        for idx in range(NSHARDS):
            if servers[idx] is None:
                host, port = addresses[idx]
                servers[idx] = NetKVServer(
                    host=host, port=port,
                    fault_injector=injectors[idx]).start()
                scrub()

        digest = hashlib.sha256()
        for key in sorted(acked):
            got = store.read(key)  # raises if an acked write was lost
            assert got == acked[key], f"acked write {key!r} corrupted"
            digest.update(key.encode())
            digest.update(b"\x00")
            digest.update(got)
            digest.update(b"\x00")
        stats = store.transport_stats.as_dict()
        return {
            "digest": digest.hexdigest(),
            "acked": len(acked),
            "injected": sum(inj.total_injected() for inj in injectors),
            "shard_down_events": stats["shard_down_events"],
            "retries": stats["retries"],
        }
    finally:
        store.close()
        for srv in servers:
            if srv is not None:
                srv.stop()


def test_acked_writes_survive_scheduled_faults():
    """Durability: every acked write reads back after shard kills,
    delay congestion, and garbled responses."""
    result = _run_campaign(seed=1207)
    # With retries=8 and replication=2 no scheduled fault may cost an
    # ack: the campaign writes ROUNDS * KEYS_PER_ROUND keys and all of
    # them must have been acknowledged (the assert inside _run_campaign
    # already proved each one reads back byte-identically).
    assert result["acked"] == ROUNDS * KEYS_PER_ROUND
    # The campaign must actually have been degraded, or this test
    # proves nothing: the injectors fired and the client paid retries.
    assert result["injected"] > 0
    assert result["retries"] > 0


def test_same_seed_campaign_replays_byte_identical():
    """Replay: the surviving state is a pure function of the seed."""
    first = _run_campaign(seed=4242)
    second = _run_campaign(seed=4242)
    assert first["digest"] == second["digest"]
    assert first["acked"] == second["acked"]
    other = _run_campaign(seed=4243)
    assert other["digest"] != first["digest"]


def test_schedule_round_trips_through_json():
    """The campaign schedule itself serializes and replays exactly —
    the handle an operator saves when a live campaign fails."""
    sched = _schedule()
    assert FaultSchedule.from_json(sched.to_json()) == sched
