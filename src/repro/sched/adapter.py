"""Maestro-like scheduler adapter: one API, any backend (paper §4.3).

"To achieve portability in job scheduling, the MuMMI workflow
interfaces with Maestro, which provides a consistent API to schedule
and monitor jobs. ... By absorbing the changes and peculiarities of
different job schedulers, Maestro allows MuMMI to be agnostic to the
specific choice of scheduler."

Two adapters ship here:

- :class:`FluxAdapter` — the virtual-time scheduler used by campaign
  simulations and benchmarks.
- :class:`ThreadAdapter` — real execution: runs a Python callable per
  job in a thread pool, which is how the examples run actual (small)
  simulations on a laptop.
"""

from __future__ import annotations

import abc
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional

from repro.sched.flux import FluxInstance
from repro.sched.jobspec import JobRecord, JobSpec, JobState

__all__ = ["SchedulerAdapter", "FluxAdapter", "ThreadAdapter"]


class SchedulerAdapter(abc.ABC):
    """Scheduler-agnostic submit/poll/cancel."""

    @abc.abstractmethod
    def submit(
        self,
        spec: JobSpec,
        fn: Optional[Callable[[], Any]] = None,
        on_complete: Optional[Callable[[JobRecord], None]] = None,
    ) -> JobRecord:
        """Submit a job. ``fn`` is the job body for adapters that really
        execute work; virtual adapters ignore it and complete after
        ``spec.duration`` of virtual time."""

    @abc.abstractmethod
    def poll(self, job_id: int) -> JobState:
        """Current lifecycle state of a submitted job."""

    @abc.abstractmethod
    def cancel(self, job_id: int) -> None:
        """Best-effort cancellation."""


class FluxAdapter(SchedulerAdapter):
    """Adapter over the virtual-time :class:`FluxInstance`."""

    def __init__(self, flux: FluxInstance) -> None:
        self.flux = flux

    def submit(self, spec, fn=None, on_complete=None) -> JobRecord:
        return self.flux.submit(spec, on_complete=on_complete)

    def poll(self, job_id: int) -> JobState:
        return self.flux.poll(job_id)

    def cancel(self, job_id: int) -> None:
        self.flux.cancel(job_id)


class ThreadAdapter(SchedulerAdapter):
    """Adapter that actually runs job bodies in a thread pool.

    Resource modeling is trivial (max_workers concurrent jobs); this
    adapter exists so the same Workflow Manager code drives both the
    campaign simulator and real laptop-scale runs.
    """

    #: Every submitted job eventually settles (completes, fails, or is
    #: cancelled) and its ``on_complete`` always fires — the contract
    #: the WM's coroutine round barrier (``asyncio.gather`` over settle
    #: futures) depends on. Inline/virtual adapters (ChaosAdapter,
    #: FluxAdapter) deliberately lack this flag: they drain on
    #: ``wait_all``/virtual time and must keep the legacy sync round.
    settles_async = True

    def __init__(self, max_workers: int = 4) -> None:
        self._pool = ThreadPoolExecutor(max_workers=max_workers)
        self._records: Dict[int, JobRecord] = {}
        self._futures: Dict[int, Future] = {}
        self._callbacks: Dict[int, Callable[[JobRecord], None]] = {}
        self._lock = threading.Lock()

    def submit(self, spec, fn=None, on_complete=None) -> JobRecord:
        record = JobRecord(spec=spec)
        with self._lock:
            self._records[record.job_id] = record
            if on_complete is not None:
                self._callbacks[record.job_id] = on_complete

        def body():
            record.state = JobState.RUNNING
            try:
                record.result = fn() if fn is not None else None
                record.state = JobState.COMPLETED
            except Exception as exc:  # job failure is data, not a crash
                record.result = exc
                record.state = JobState.FAILED
            callback = self._callbacks.pop(record.job_id, None)
            if callback is not None:
                callback(record)
            return record.result

        self._futures[record.job_id] = self._pool.submit(body)
        return record

    def poll(self, job_id: int) -> JobState:
        return self._records[job_id].state

    def cancel(self, job_id: int) -> None:
        future = self._futures.get(job_id)
        if future is not None and future.cancel():
            record = self._records[job_id]
            record.state = JobState.CANCELLED
            callback = self._callbacks.pop(job_id, None)
            if callback is not None:
                callback(record)

    def wait_all(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted job has finished (test/demo helper)."""
        for future in list(self._futures.values()):
            future.result(timeout=timeout)

    @property
    def executor(self):
        """``concurrent.futures``-style executor for WM task offloads.

        The coroutine WM runs its CPU-bound tasks via
        ``loop.run_in_executor(adapter.executor, ...)`` so offloads and
        job bodies share one substrate instead of spawning side pools.
        """
        return self._pool

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)
