"""Shared test configuration: a per-test watchdog alarm.

The transport suite deliberately exercises dead sockets, half-closed
connections, and injected network faults. If one of those tests ever
regresses into a real hang it must fail fast, not wedge the whole
tier-1 run. ``pytest-timeout`` is not available in the container, so
this is the equivalent: a SIGALRM-based alarm around each test's call
phase (fixtures — including the slow session-scoped ones — are not
under the alarm).

Override per test with ``@pytest.mark.timeout(seconds)``.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

DEFAULT_TIMEOUT_SECONDS = 120.0

_ALARM_USABLE = (
    hasattr(signal, "SIGALRM")
    and threading.current_thread() is threading.main_thread()
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if its call phase exceeds the "
        f"watchdog (default {DEFAULT_TIMEOUT_SECONDS:.0f}s)",
    )
    config.addinivalue_line(
        "markers",
        "multi_server: test spins up several live NetKV servers at once; "
        "set REPRO_SKIP_MULTI_SERVER=1 to skip on constrained runners",
    )
    config.addinivalue_line(
        "markers",
        "chaos: randomized chaos campaign; campaign count scales with "
        "REPRO_CHAOS_CAMPAIGNS (default 5; see CHAOS.md for nightly settings)",
    )
    config.addinivalue_line(
        "markers",
        "service: test runs a live control-plane daemon and drives it over "
        "HTTP; set REPRO_SKIP_SERVICE=1 to skip on constrained runners",
    )
    config.addinivalue_line(
        "markers",
        "async_transport: test targets the asyncio NetKV transport "
        "specifically (event-loop server, coalescing channel); set "
        "REPRO_SKIP_ASYNC=1 to skip on constrained runners",
    )
    config.addinivalue_line(
        "markers",
        "persist: test exercises durable shards (WAL fsync, crash "
        "recovery, writer-kill subprocesses); set REPRO_SKIP_PERSIST=1 "
        "to skip on constrained runners",
    )
    config.addinivalue_line(
        "markers",
        "matcher_scale: test builds 10k-40k-node resource graphs for "
        "the partitioned-matcher sweeps; set REPRO_SKIP_MATCHER_SCALE=1 "
        "to skip on small CI runners",
    )


def pytest_collection_modifyitems(config, items):
    gates = [("REPRO_SKIP_MULTI_SERVER", "multi_server"),
             ("REPRO_SKIP_SERVICE", "service"),
             ("REPRO_SKIP_ASYNC", "async_transport"),
             ("REPRO_SKIP_PERSIST", "persist"),
             ("REPRO_SKIP_MATCHER_SCALE", "matcher_scale")]
    for env, marker in gates:
        if not os.environ.get(env):
            continue
        skip = pytest.mark.skip(reason=f"{env} is set")
        for item in items:
            if item.get_closest_marker(marker):
                item.add_marker(skip)


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    if not _ALARM_USABLE:
        return (yield)
    marker = item.get_closest_marker("timeout")
    seconds = float(marker.args[0]) if (marker and marker.args) else DEFAULT_TIMEOUT_SECONDS

    def on_alarm(signum, frame):  # raises in the main thread, interrupting
        pytest.fail(               # even a blocking socket recv()
            f"watchdog: test exceeded {seconds:.0f}s "
            f"(likely a hung socket or deadlock)", pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
