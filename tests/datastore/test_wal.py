"""ShardWAL unit tests: framing, recovery, torn tails, compaction.

The WAL's one contract: a shard that crashed and replayed holds exactly
the set of acked writes — every fsynced record present, no deleted key
resurrected, and a torn final record (the crash landed mid-write)
silently truncated instead of poisoning recovery.
"""

from __future__ import annotations

import asyncio
import os
import zlib

import pytest

from repro.datastore.base import StoreError
from repro.datastore.wal import (
    DurabilityConfig,
    ShardWAL,
    WALCorruption,
    encode_record,
    iter_frames,
    replay_into,
)

pytestmark = pytest.mark.persist


def run(coro):
    return asyncio.run(coro)


def replayed(directory):
    """Open + close a fresh WAL and return what it recovered."""
    wal = ShardWAL(str(directory))
    try:
        return dict(wal.recovered)
    finally:
        wal.close()


# --- framing ----------------------------------------------------------------


def test_record_roundtrip():
    data = b"".join([
        encode_record(b"S", b"alpha", b"v1"),
        encode_record(b"D", b"alpha"),
        encode_record(b"R", b"src", b"dst"),
        encode_record(b"F"),
    ])
    bodies = [body for _, body in iter_frames(data)]
    assert len(bodies) == 4
    into = {"pre": b"existing"}
    applied, end = replay_into(data, into)
    assert applied == 4
    assert end == len(data)
    assert into == {}  # delete drops alpha; rename finds no src; F clears


def test_iter_frames_stops_at_corrupt_crc():
    good = encode_record(b"S", b"k", b"v")
    bad = bytearray(encode_record(b"S", b"k2", b"v2"))
    bad[-1] ^= 0xFF  # flip one payload byte: CRC mismatch
    frames = list(iter_frames(good + bytes(bad)))
    assert len(frames) == 1


def test_iter_frames_stops_at_torn_length():
    good = encode_record(b"S", b"k", b"v")
    torn = good + b"\x55\x01"  # a few garbage bytes, not even a header
    frames = list(iter_frames(torn))
    assert len(frames) == 1
    assert frames[0][0] == len(good)


def test_config_validation():
    with pytest.raises(ValueError):
        DurabilityConfig(compact_bytes=16)


# --- recovery ---------------------------------------------------------------


def test_replay_recovers_sets_and_deletes(tmp_path):
    wal = ShardWAL(str(tmp_path))
    wal.append_set("a", b"1")
    wal.append_set("b", b"2")
    wal.append_delete("a")
    wal.append_rename("b", "c")
    run(wal.commit())
    wal.close()

    state = replayed(tmp_path)
    assert state == {"c": b"2"}  # delete applied in order, rename applied


def test_deleted_key_never_resurrects_across_restarts(tmp_path):
    wal = ShardWAL(str(tmp_path))
    wal.append_set("k", b"v")
    wal.append_delete("k")
    run(wal.commit())
    wal.close()
    # Two restart generations: the delete must survive both (the log
    # is totally ordered, so the set can never replay after the delete).
    assert "k" not in replayed(tmp_path)
    assert "k" not in replayed(tmp_path)


def test_close_flushes_unsynced_tail(tmp_path):
    wal = ShardWAL(str(tmp_path))
    wal.append_set("tail", b"value")  # no commit() — close must flush
    wal.close()
    assert replayed(tmp_path)["tail"] == b"value"


def test_torn_tail_is_truncated(tmp_path):
    wal = ShardWAL(str(tmp_path))
    for i in range(10):
        wal.append_set(f"k{i}", b"v")
    run(wal.commit())
    wal.close()

    path = os.path.join(str(tmp_path), "wal.log")
    size = os.path.getsize(path)
    with open(path, "ab") as fh:
        fh.write(b"\x13\x37garbage-half-record")

    wal = ShardWAL(str(tmp_path))
    try:
        assert len(wal.recovered) == 10
        assert wal.truncated_bytes > 0
        # The tail was physically removed, not just skipped.
        assert os.path.getsize(path) == size
        # And the log accepts appends cleanly after the repair.
        wal.append_set("after", b"repair")
        run(wal.commit())
    finally:
        wal.close()
    assert replayed(tmp_path)["after"] == b"repair"


def test_torn_mid_record_crc(tmp_path):
    wal = ShardWAL(str(tmp_path))
    wal.append_set("good", b"v")
    run(wal.commit())
    wal.close()
    path = os.path.join(str(tmp_path), "wal.log")
    # Append a frame with a valid length but wrong CRC (torn payload).
    body = b"S" + (5).to_bytes(4, "little") + b"wrongwrong"
    frame = len(body).to_bytes(4, "little") + (zlib.crc32(body) ^ 1).to_bytes(
        4, "little") + body
    with open(path, "ab") as fh:
        fh.write(frame)
    assert replayed(tmp_path) == {"good": b"v"}


def test_corrupt_snapshot_refuses_recovery(tmp_path):
    wal = ShardWAL(str(tmp_path))
    wal.append_set("k", b"v")
    run(wal.commit())
    wal.snapshot([("k", b"v")])
    wal.close()
    snap = os.path.join(str(tmp_path), "snapshot.bin")
    with open(snap, "r+b") as fh:
        fh.seek(-1, os.SEEK_END)
        fh.write(b"\xff")
    # A torn WAL tail is routine; a damaged snapshot is data loss and
    # must be surfaced, not silently shrugged off.
    with pytest.raises(WALCorruption):
        ShardWAL(str(tmp_path))


# --- compaction -------------------------------------------------------------


def test_snapshot_compacts_wal(tmp_path):
    wal = ShardWAL(str(tmp_path))
    for i in range(50):
        wal.append_set("hot", f"v{i}".encode())
    run(wal.commit())
    assert wal.log_bytes > 0
    info = wal.snapshot([("hot", b"v49")])
    assert info["keys"] == 1
    assert wal.log_bytes == 0
    wal.append_delete("hot")
    run(wal.commit())
    wal.close()
    assert replayed(tmp_path) == {}  # snapshot value, then the delete


def test_needs_compaction_threshold(tmp_path):
    wal = ShardWAL(str(tmp_path), DurabilityConfig(compact_bytes=4096))
    assert not wal.needs_compaction()
    for i in range(100):
        wal.append_set(f"k{i}", b"x" * 64)
    assert wal.needs_compaction()  # pending bytes count before the fsync
    wal.snapshot([])
    assert not wal.needs_compaction()
    wal.close()


def test_begin_snapshot_seals_a_segment(tmp_path):
    """The cheap half of compaction moves the live log aside; nothing
    acked is lost even if the heavy half never runs (crash between the
    two phases)."""
    wal = ShardWAL(str(tmp_path))
    for i in range(25):
        wal.append_set(f"k{i}", b"v")
    run(wal.commit())
    wal.append_set("unsynced", b"tail")  # frozen, never fsynced
    wal.begin_snapshot()
    assert os.path.exists(os.path.join(str(tmp_path), "wal.log.0"))
    assert wal.log_bytes == 0
    wal.append_set("after", b"freeze")
    # Close without write_snapshot: simulates dying mid-compaction.
    wal.close()
    state = replayed(tmp_path)
    assert len(state) == 27
    assert state["unsynced"] == b"tail"
    assert state["after"] == b"freeze"


def test_write_snapshot_retires_segments(tmp_path):
    wal = ShardWAL(str(tmp_path))
    for i in range(10):
        wal.append_set(f"k{i}", b"v")
    run(wal.commit())
    wal.begin_snapshot()
    items = [(f"k{i}", b"v") for i in range(10)]
    wal.append_set("during", b"snap")
    info = wal.write_snapshot(items)
    assert info["keys"] == 10
    assert not os.path.exists(os.path.join(str(tmp_path), "wal.log.0"))
    run(wal.commit())
    wal.close()
    state = replayed(tmp_path)
    assert len(state) == 11 and state["during"] == b"snap"


def test_failed_snapshot_requeues_frozen_records(tmp_path, monkeypatch):
    """A snapshot that cannot land must not drop the frozen buffer:
    the records re-queue ahead of later appends and the sealed segment
    stays on disk for recovery."""
    wal = ShardWAL(str(tmp_path))
    wal.append_set("frozen", b"v")  # pending, never fsynced
    wal.begin_snapshot()
    monkeypatch.setattr(
        "repro.datastore.wal.os.replace",
        lambda *a: (_ for _ in ()).throw(OSError("disk full")))
    with pytest.raises(OSError):
        wal.write_snapshot([("frozen", b"v")])
    monkeypatch.undo()
    assert os.path.exists(os.path.join(str(tmp_path), "wal.log.0"))
    run(wal.commit())  # frozen record now syncs into the new live log
    wal.close()
    assert replayed(tmp_path)["frozen"] == b"v"


def test_sync_failure_poisons_the_wal(tmp_path, monkeypatch):
    """A failed write+fsync must not silently drop acked records: the
    buffer is restored, the WAL flags itself failed, and commits raise
    instead of acking."""
    wal = ShardWAL(str(tmp_path))
    wal.append_set("a", b"1")
    monkeypatch.setattr(
        "repro.datastore.wal._write_all",
        lambda fh, data: (_ for _ in ()).throw(OSError("I/O error")))
    with pytest.raises(StoreError):
        run(wal.commit())
    monkeypatch.undo()
    assert wal.sync_failures == 1
    assert wal.info()["failed"] is True
    # The records were re-queued, not lost...
    assert wal.synced_seq < wal.seq
    # ...but the shard stays poisoned: later commits refuse to ack.
    wal.append_set("b", b"2")
    with pytest.raises(StoreError):
        run(wal.commit())
    with pytest.raises(StoreError):
        wal.begin_snapshot()
    wal.close()


def test_closed_wal_refuses(tmp_path):
    wal = ShardWAL(str(tmp_path))
    wal.close()
    with pytest.raises(StoreError):
        wal.append_set("k", b"v")
    with pytest.raises(StoreError):
        wal.snapshot([])


# --- group commit -----------------------------------------------------------


def test_group_commit_coalesces_waiters(tmp_path):
    wal = ShardWAL(str(tmp_path))

    async def burst():
        for i in range(20):
            wal.append_set(f"k{i}", b"v")
        await asyncio.gather(*(wal.commit() for _ in range(20)))

    run(burst())
    # 20 concurrent waiters must not cost 20 fsync passes.
    assert wal.fsync_batches <= 3
    assert wal.synced_seq == wal.seq
    wal.close()
    assert len(replayed(tmp_path)) == 20
