"""Crash/restart and reshard chaos campaigns over the model store.

The issue's acceptance bar: a campaign that crash-restarts *every*
shard under load and reshards mid-campaign must complete with zero
acked-write loss, no tombstone resurrection, and no stale reads — and
the negative control (no durable log, replication=1) must actually
*trip* the ``acked_write_lost`` invariant, proving the checkers watch
what the positive tests claim they watch.
"""

import pytest

from repro.chaos import (
    ChaosCampaign,
    ChaosConfig,
    FaultSchedule,
    load_replay,
    save_replay,
)

pytestmark = pytest.mark.chaos


def run(schedule, rounds=5, seed=11, **cfg):
    campaign = ChaosCampaign(
        schedule, ChaosConfig(seed=seed, rounds=rounds, **cfg))
    return campaign, campaign.run()


def test_crash_restart_every_shard_under_load():
    # Default config has 4 shards; crash each one in turn mid-campaign.
    sched = FaultSchedule()
    for shard in range(4):
        sched.crash_restart(35.0 + 60.0 * shard, shard)
    campaign, report = run(sched, rounds=6)
    assert report.ok, [v.to_json() for v in report.violations]
    assert report.chaos["crash_restarts"] == 4
    assert report.chaos["faults_applied"] == 4
    assert campaign.store.replica_health()["up"] == 4
    assert campaign.store.verify_durable() == []


def test_reshard_during_writes():
    campaign, report = run(FaultSchedule().reshard(95.0, 1), rounds=5)
    assert report.ok, [v.to_json() for v in report.violations]
    assert report.chaos["reshards"] == 1
    assert report.chaos["slots_moved"] > 0
    assert campaign.store.replica_health()["slot_overrides"] > 0


def test_reshard_then_crash_both_ends():
    """The acceptance scenario in one campaign: reshard mid-run, then
    crash-restart both the migration source and destination (and every
    other shard for good measure). Replay must land each moved key in
    its *new* home with no loss and no resurrection."""
    sched = FaultSchedule().reshard(65.0, 1)
    for shard in range(4):
        sched.crash_restart(125.0 + 30.0 * shard, shard)
    campaign, report = run(sched, rounds=7)
    assert report.ok, [v.to_json() for v in report.violations]
    assert report.chaos["reshards"] == 1
    assert report.chaos["crash_restarts"] == 4
    assert report.chaos["slots_moved"] > 0
    assert campaign.store.verify_durable() == []


def test_crash_restart_with_concurrent_shard_outage():
    # One shard dark while another crash-restarts: replication plus the
    # durable log together must still cover every acked write.
    sched = (FaultSchedule()
             .shard_down(30.0, 3)
             .crash_restart(65.0, 0)
             .crash_restart(95.0, 1)
             .shard_up(155.0, 3))
    _, report = run(sched, rounds=5)
    assert report.ok, [v.to_json() for v in report.violations]
    assert report.chaos["crash_restarts"] == 2


def test_nondurable_crash_loses_acked_writes():
    """Negative control: durable=False + replication=1 means a crash
    wipes the only copy — the invariant checkers must catch it."""
    sched = FaultSchedule().crash_restart(95.0, 0).crash_restart(95.0, 1)
    _, report = run(sched, rounds=4, durable=False, replication=1)
    assert not report.ok
    names = {v.invariant for v in report.violations}
    assert "acked_write_lost" in names


def test_durable_campaign_is_byte_identical_via_replay(tmp_path):
    """`repro chaos --replay` byte-reproducibility for the new events:
    save the schedule+config, reload, rerun, compare serialized reports."""
    sched = (FaultSchedule()
             .reshard(65.0, 2)
             .crash_restart(95.0, 0)
             .crash_restart(155.0, 2))
    config = ChaosConfig(seed=23, rounds=6)
    path = str(tmp_path / "replay.json")
    save_replay(path, sched, config)

    first = ChaosCampaign(sched, config).run().dumps()
    loaded_sched, loaded_config = load_replay(path)
    assert loaded_config == config
    second = ChaosCampaign(loaded_sched, loaded_config).run().dumps()
    assert first == second
