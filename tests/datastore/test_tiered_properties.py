"""Model-based property test: the tiered store behaves like one store."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datastore import FSStore, KVStore, KeyNotFound
from repro.datastore.tiered import TieredStore

KEYS = ["ckpt/a", "ckpt/b", "traj/x", "traj/y"]


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["write", "delete", "move", "evict", "read"]),
            st.sampled_from(KEYS),
            st.binary(min_size=1, max_size=32),
        ),
        max_size=40,
    )
)
def test_property_tiered_matches_dict_model(tmp_path_factory, ops):
    tmp = tmp_path_factory.mktemp("tiered")
    store = TieredStore(
        fast=KVStore(nservers=2),
        backing=FSStore(str(tmp / "backing")),
        persist_prefixes=("ckpt/",),
    )
    model = {}
    for i, (op, key, payload) in enumerate(ops):
        if op == "write":
            store.write(key, payload)
            model[key] = payload
        elif op == "delete":
            if key in model:
                store.delete(key)
                del model[key]
            else:
                with pytest.raises(KeyNotFound):
                    store.delete(key)
        elif op == "move":
            dst = KEYS[(KEYS.index(key) + 1) % len(KEYS)]
            if key in model:
                store.move(key, dst)
                model[dst] = model.pop(key)
            else:
                with pytest.raises(KeyNotFound):
                    store.move(key, dst)
        elif op == "evict":
            store.evict("traj/")  # scratch namespace only
            # scratch keys become unreadable; persistent keys survive.
            for k in list(model):
                if k.startswith("traj/"):
                    del model[k]
        elif op == "read":
            if key in model:
                assert store.read(key) == model[key]
            else:
                with pytest.raises(KeyNotFound):
                    store.read(key)
    assert store.keys() == sorted(model)
    for key, value in model.items():
        assert store.read(key) == value
    store.close()
