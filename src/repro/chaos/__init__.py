"""Deterministic chaos campaigns for the coordination stack.

Everything here runs on virtual time: a seeded
:class:`~repro.chaos.schedule.FaultSchedule` injects shard failures,
wire corruption, worker stalls, checkpoint/restore handovers, and
clock skips at exact virtual instants; an
:class:`~repro.chaos.invariants.InvariantSuite` checks the system's
coordination guarantees after every workflow round; and a
:class:`~repro.chaos.fuzzer.CampaignFuzzer` samples random schedules
and delta-debugs any failure down to a minimal JSON replay file.

See CHAOS.md at the repo root for the schedule DSL, the invariant
catalog, and a worked replay example.
"""

from repro.chaos.fuzzer import (CampaignFuzzer, FuzzFailure, FuzzResult,
                                load_replay, save_replay)
from repro.chaos.harness import (CampaignReport, ChaosAdapter, ChaosCampaign,
                                 ChaosConfig)
from repro.chaos.invariants import InvariantSuite, Violation, selector_equivalence
from repro.chaos.schedule import FAULT_KINDS, FaultEvent, FaultSchedule
from repro.chaos.store import ChaosStore

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "ChaosStore",
    "InvariantSuite",
    "Violation",
    "selector_equivalence",
    "ChaosAdapter",
    "ChaosConfig",
    "ChaosCampaign",
    "CampaignReport",
    "CampaignFuzzer",
    "FuzzFailure",
    "FuzzResult",
    "save_replay",
    "load_replay",
]
