"""Extension bench: buffered vs byte-at-a-time NetKV frame reads.

The transport hardening replaced the one-``recv()``-per-byte header
loop with a chunked :class:`_RecvBuffer` on both client and server.
This bench quantifies the win two ways:

1. a reader micro-benchmark: parse a stream of small response frames
   off a socketpair with each reader implementation;
2. end-to-end: many-small-GET throughput through the real server,
   which pays the reader cost twice per round trip (request header at
   the server, response header at the client).

The paper's >12x CG→continuum feedback speed-up (§5.1, Fig. 7) rides
on exactly this workload shape — thousands of tiny key reads per
iteration — so the header read must not dominate the round trip.
"""

import socket
import threading
import time

from conftest import report

from repro.datastore.netkv import (
    NetKVClient,
    NetKVServer,
    _RecvBuffer,
    _recv_exact_unbuffered,
    _recv_line_unbuffered,
)

N_FRAMES = 20_000
PAYLOAD = b"x" * 16
FRAME = b"OK %d\n%s" % (len(PAYLOAD), PAYLOAD)


def _feed(sock, data):
    try:
        sock.sendall(data)
    finally:
        sock.close()


def _time_reader(read_frames):
    """Feed N_FRAMES small frames through a socketpair; time the reader."""
    left, right = socket.socketpair()
    feeder = threading.Thread(target=_feed, args=(left, FRAME * N_FRAMES),
                              daemon=True)
    feeder.start()
    t0 = time.perf_counter()
    read_frames(right)
    elapsed = time.perf_counter() - t0
    feeder.join()
    right.close()
    return elapsed


def _read_unbuffered(sock):
    for _ in range(N_FRAMES):
        header = _recv_line_unbuffered(sock)
        n = int(header[3:])
        _recv_exact_unbuffered(sock, n)


def _read_buffered(sock):
    buf = _RecvBuffer(sock)
    for _ in range(N_FRAMES):
        header = buf.recv_line()
        n = int(header[3:])
        buf.recv_exact(n)


class TestBufferedReaderWin:
    def test_reader_microbench(self):
        t_unbuf = _time_reader(_read_unbuffered)
        t_buf = _time_reader(_read_buffered)
        speedup = t_unbuf / t_buf
        report("ext_netkv_reader", [
            f"frames               {N_FRAMES}",
            f"byte-at-a-time       {t_unbuf:.3f} s "
            f"({N_FRAMES / t_unbuf:,.0f} frames/s)",
            f"buffered             {t_buf:.3f} s "
            f"({N_FRAMES / t_buf:,.0f} frames/s)",
            f"speedup              {speedup:.1f}x",
        ])
        # The buffered reader replaces ~22 recv() syscalls per frame
        # with amortized fractions of one; anything under 2x means the
        # optimization regressed.
        assert speedup > 2.0

    def test_many_small_gets_end_to_end(self):
        nkeys, nreads = 500, 4000
        server = NetKVServer().start()
        client = NetKVClient(server.address)
        try:
            for i in range(nkeys):
                client.set(f"small/{i:04d}", b"v" * 24)
            t0 = time.perf_counter()
            for i in range(nreads):
                client.get(f"small/{i % nkeys:04d}")
            elapsed = time.perf_counter() - t0
            lat = client.stats.latency
            report("ext_netkv_small_gets", [
                f"reads                {nreads}",
                f"elapsed              {elapsed:.3f} s",
                f"throughput           {nreads / elapsed:,.0f} GETs/s",
                f"round-trip p50       <= {lat.quantile_ms(0.5):.2f} ms",
                f"round-trip p99       <= {lat.quantile_ms(0.99):.2f} ms",
            ])
            assert nreads / elapsed > 500  # sanity floor, loopback TCP
        finally:
            client.close()
            server.stop()
