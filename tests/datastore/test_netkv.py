"""Tests for the networked KV server/client over real TCP sockets."""

import threading

import pytest

from repro.datastore.base import KeyNotFound, StoreError
from repro.datastore.netkv import NetKVClient, NetKVCluster, NetKVServer, NetKVStore


@pytest.fixture
def server():
    srv = NetKVServer().start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    c = NetKVClient(server.address)
    yield c
    c.close()


class TestClientServer:
    def test_ping(self, client):
        assert client.ping()

    def test_set_get_roundtrip(self, client):
        client.set("k", b"value-bytes")
        assert client.get("k") == b"value-bytes"

    def test_binary_payloads(self, client):
        blob = bytes(range(256)) * 100  # includes \n and \x00
        client.set("bin", blob)
        assert client.get("bin") == blob

    def test_empty_payload(self, client):
        client.set("empty", b"")
        assert client.get("empty") == b""

    def test_get_missing_raises(self, client):
        with pytest.raises(KeyNotFound):
            client.get("missing")

    def test_delete(self, client):
        client.set("k", b"v")
        client.delete("k")
        with pytest.raises(KeyNotFound):
            client.get("k")
        with pytest.raises(KeyNotFound):
            client.delete("k")

    def test_keys_prefix(self, client):
        client.set("rdf/a", b"")
        client.set("rdf/b", b"")
        client.set("other", b"")
        assert client.keys("rdf/") == ["rdf/a", "rdf/b"]
        assert len(client.keys()) == 3

    def test_keys_empty_store(self, client):
        assert client.keys() == []

    def test_rename(self, client):
        client.set("old", b"v")
        client.rename("old", "new")
        assert client.get("new") == b"v"
        with pytest.raises(KeyNotFound):
            client.get("old")

    def test_len(self, client):
        for i in range(5):
            client.set(f"k{i}", b"")
        assert len(client) == 5

    def test_unknown_command_is_err(self, client):
        with pytest.raises(StoreError):
            client._roundtrip("BOGUS")

    def test_many_roundtrips_one_connection(self, client):
        for i in range(200):
            client.set(f"k{i:03d}", str(i).encode())
        for i in range(200):
            assert client.get(f"k{i:03d}") == str(i).encode()

    def test_concurrent_clients(self, server):
        errors = []

        def worker(wid):
            try:
                c = NetKVClient(server.address)
                for i in range(50):
                    c.set(f"w{wid}/k{i}", f"{wid}-{i}".encode())
                for i in range(50):
                    assert c.get(f"w{wid}/k{i}") == f"{wid}-{i}".encode()
                c.close()
            except Exception as exc:  # surface in the main thread
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        probe = NetKVClient(server.address)
        assert len(probe) == 200
        probe.close()


class TestNetKVCluster:
    @pytest.fixture
    def cluster(self):
        servers = [NetKVServer().start() for _ in range(3)]
        cluster = NetKVCluster([s.address for s in servers])
        yield cluster
        cluster.close()
        for s in servers:
            s.stop()

    def test_routing_spreads_keys(self, cluster):
        for i in range(300):
            cluster.set(f"frame-{i:04d}", b"x")
        sizes = [len(c) for c in cluster.clients]
        assert sum(sizes) == 300
        assert all(s > 0 for s in sizes)

    def test_keys_aggregates(self, cluster):
        for i in range(30):
            cluster.set(f"k{i:02d}", b"")
        assert len(cluster.keys()) == 30

    def test_cross_shard_rename(self, cluster):
        cluster.set("aaa", b"payload")
        cluster.rename("aaa", "zzzzzz")
        assert cluster.get("zzzzzz") == b"payload"
        with pytest.raises(KeyNotFound):
            cluster.get("aaa")

    def test_needs_addresses(self):
        with pytest.raises(StoreError):
            NetKVCluster([])


class TestNetKVStoreAdapter:
    @pytest.fixture
    def store(self):
        servers = [NetKVServer().start() for _ in range(2)]
        store = NetKVStore.connect([s.address for s in servers])
        yield store
        store.close()
        for s in servers:
            s.stop()

    def test_datastore_contract_basics(self, store):
        store.write("a/b", b"hello")
        assert store.read("a/b") == b"hello"
        assert store.exists("a/b")
        store.move("a/b", "done/b")
        assert store.keys("done/") == ["done/b"]
        store.delete("done/b")
        assert store.keys() == []

    def test_npz_payloads_over_the_wire(self, store):
        import numpy as np

        store.write_npz("arr", {"x": np.arange(100)})
        back = store.read_npz("arr")
        np.testing.assert_array_equal(back["x"], np.arange(100))

    def test_feedback_manager_works_over_tcp(self, store):
        """The real CG->continuum feedback path against real sockets."""
        import numpy as np

        from repro.app.feedback import CGToContinuumFeedback
        from repro.sims.cg.analysis import RDFResult
        from repro.sims.continuum.ddft import ContinuumConfig, ContinuumSim

        cont = ContinuumSim(ContinuumConfig(grid=16, n_inner=2, n_outer=2,
                                            n_proteins=2, dt=0.25, seed=0))
        edges = np.linspace(0, 3, 11)
        g = np.ones((2, 10)); g[0, :3] = 3.0
        for i in range(10):
            store.write(f"rdf/live/f{i}",
                        RDFResult(f"cg{i}", 1.0, edges, g).to_bytes())
        mgr = CGToContinuumFeedback(store, cont)
        rep = mgr.run_iteration()
        assert rep.n_items == 10
        assert cont.coupling_version == 1
        assert store.keys("rdf/live/") == []


class TestShutdown:
    def test_shutdown_command_stops_server(self):
        srv = NetKVServer().start()
        client = NetKVClient(srv.address)
        client.shutdown_server()
        # The listener should go away; a fresh connect eventually fails.
        import socket as socketlib
        import time

        deadline = time.time() + 5
        refused = False
        while time.time() < deadline:
            try:
                probe = socketlib.create_connection(srv.address, timeout=0.2)
                probe.close()
                time.sleep(0.05)
            except OSError:
                refused = True
                break
        assert refused

    def test_stop_severs_connections_and_joins_loop(self):
        """``stop()`` must sever live connections and join the loop thread.

        The event-loop server replaces per-connection handler threads
        with one loop thread per shard; stop() awaits in-flight serve
        tasks (acked writes are fully applied), aborts the transports,
        and joins the loop — a "stopped" shard must not keep serving.
        """
        srv = NetKVServer().start()
        client = NetKVClient(srv.address)
        client.set("k", b"v")  # opens a persistent connection
        with srv._conn_lock:
            conns = list(srv._conns)
        assert conns, "connection was not tracked"
        loop_thread = srv._loop_thread
        assert loop_thread is not None and loop_thread.is_alive()
        srv.stop()
        assert not loop_thread.is_alive()  # loop thread joined
        assert srv.connection_count() == 0  # live connections severed
        client.close()

    def test_threaded_stop_joins_handler_threads(self):
        """Regression (threaded baseline): ``stop()`` must join handler
        threads.

        Handler threads are daemons, and ``socketserver`` only tracks
        non-daemon threads for ``server_close()`` to join — so the old
        shutdown path left handlers running and could drop an acked
        write on Ctrl-C (`repro netkv --serve`). ``stop()`` tracks and
        joins them itself.
        """
        from repro.datastore.netkv import ThreadedNetKVServer

        srv = ThreadedNetKVServer().start()
        client = NetKVClient(srv.address)
        client.set("k", b"v")  # opens a persistent handler connection
        with srv._conn_lock:
            handlers = list(srv._handlers)
        assert handlers, "handler thread was not tracked"
        srv.stop()
        assert all(not t.is_alive() for t in handlers)
        assert srv._thread is None  # serve_forever thread joined too
        client.close()
