"""High-dimensional point objects, the currency of the samplers.

DynIm operates on "high-dimensional point objects and, hence, [the
selectors] are agnostic to the specific encoding of patches and frames"
(§4.4 Task 2). A :class:`Point` is an id plus an encoding vector; a
:class:`PointStore` is an append-efficient columnar buffer of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["Point", "PointStore"]


@dataclass(frozen=True)
class Point:
    """One candidate: a stable id and its encoding.

    The encoding is read-only; ids are unique within a sampler.
    """

    id: str
    coords: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.coords, dtype=np.float64)
        arr.setflags(write=False)
        object.__setattr__(self, "coords", arr)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError(f"coords must be a non-empty 1-D vector, got shape {arr.shape}")

    @property
    def dim(self) -> int:
        return int(self.coords.size)


class PointStore:
    """Columnar buffer of points with O(1) amortized append.

    Coordinates live in one contiguous array (grown geometrically) so
    rank updates are vectorized over all candidates at once — the
    "expensive computation postponed until selection" of Task 2 is a
    single NumPy pass, not a Python loop.
    """

    def __init__(self, dim: int, capacity: int = 1024) -> None:
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = dim
        self._coords = np.empty((max(capacity, 1), dim), dtype=np.float64)
        self._ids: List[str] = []
        self._index_of: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, point_id: str) -> bool:
        return point_id in self._index_of

    def add(self, point: Point) -> int:
        """Append a point; returns its row index. Duplicate ids rejected."""
        if point.dim != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {point.dim}")
        if point.id in self._index_of:
            raise KeyError(f"duplicate point id {point.id!r}")
        row = len(self._ids)
        if row >= self._coords.shape[0]:
            grown = np.empty((self._coords.shape[0] * 2, self.dim), dtype=np.float64)
            grown[:row] = self._coords[:row]
            self._coords = grown
        self._coords[row] = point.coords
        self._ids.append(point.id)
        self._index_of[point.id] = row
        return row

    def add_many(self, points: Iterable[Point]) -> List[int]:
        return [self.add(p) for p in points]

    def coords_view(self) -> np.ndarray:
        """Read-only view of all coordinates, shape (n, dim)."""
        view = self._coords[: len(self._ids)]
        view.setflags(write=False)
        return view

    def ids(self) -> List[str]:
        return list(self._ids)

    def id_at(self, row: int) -> str:
        return self._ids[row]

    def row_of(self, point_id: str) -> int:
        return self._index_of[point_id]

    def get(self, point_id: str) -> Point:
        row = self._index_of[point_id]
        return Point(id=point_id, coords=self._coords[row].copy())
