"""Integration tests: the full three-scale application end to end."""

import numpy as np
import pytest

from repro.app.builder import build_application
from repro.core.wm import WorkflowConfig


@pytest.fixture(scope="module")
def app_after_rounds(tmp_path_factory):
    """Build once, run three rounds — shared by the assertions below."""
    app = build_application(
        store_url="kv://4",
        workflow=WorkflowConfig(beads_per_type=8, cg_chunks_per_job=2,
                                cg_steps_per_chunk=10, aa_chunks_per_job=1,
                                aa_steps_per_chunk=10, seed=0),
        seed=0,
    )
    app.run(nrounds=3)
    return app


class TestEndToEnd:
    def test_all_three_scales_ran(self, app_after_rounds):
        c = app_after_rounds.wm.counters
        assert c["snapshots"] == 3
        assert c["cg_finished"] > 0
        assert c["aa_finished"] > 0

    def test_forward_coupling_chain(self, app_after_rounds):
        c = app_after_rounds.wm.counters
        # continuum -> patches -> selection -> CG -> frames -> selection -> AA
        assert c["patches"] >= c["patches_selected"] > 0
        assert c["frames_seen"] >= c["frames_selected"] > 0

    def test_cg_to_continuum_feedback_applied(self, app_after_rounds):
        # RDFs flowed back: continuum couplings were updated in situ.
        assert app_after_rounds.macro.coupling_version > 0
        assert len(app_after_rounds.cg2cont.reports) > 0

    def test_aa_to_cg_feedback_applied(self, app_after_rounds):
        assert app_after_rounds.forcefield.version > 0
        assert len(app_after_rounds.aa2cg.reports) > 0

    def test_processed_data_tagged_out_of_live_namespaces(self, app_after_rounds):
        store = app_after_rounds.store
        assert len(store.keys("rdf/done/")) > 0
        assert len(store.keys("ss/done/")) > 0

    def test_patches_persisted(self, app_after_rounds):
        assert len(app_after_rounds.store.keys("patches/")) > 0


class TestBackendSwap:
    @pytest.mark.parametrize("scheme", ["kv://2", "fs", "taridx"])
    def test_same_pipeline_any_backend(self, scheme, tmp_path):
        url = scheme if scheme.startswith("kv") else f"{scheme}://{tmp_path}/store"
        app = build_application(
            store_url=url,
            workflow=WorkflowConfig(beads_per_type=6, cg_chunks_per_job=1,
                                    cg_steps_per_chunk=5, aa_chunks_per_job=1,
                                    aa_steps_per_chunk=5, seed=0),
            seed=0,
        )
        counters = app.run(nrounds=2)
        assert counters["cg_finished"] > 0
        app.store.close()


class TestEncoderPretraining:
    def test_pretrained_encoder_builds_and_runs(self):
        app = build_application(
            pretrain_encoder=True,
            workflow=WorkflowConfig(beads_per_type=6, cg_chunks_per_job=1,
                                    cg_steps_per_chunk=5, seed=1),
            seed=1,
        )
        counters = app.run(nrounds=1)
        assert counters["patches"] > 0

    def test_encoder_maps_patches_to_9d(self):
        app = build_application(seed=2)
        app.wm.task1_process_macro()
        pts = app.wm.patch_selector.queues["ras"].points() + \
            app.wm.patch_selector.queues["ras-raf"].points()
        assert all(p.dim == 9 for p in pts)
