"""Randomized campaigns plus delta-debugging shrinking.

The :class:`CampaignFuzzer` samples N fault schedules from one seed,
runs each as a full :class:`~repro.chaos.harness.ChaosCampaign`, and
collects the invariant reports. When a campaign fails, the schedule is
*shrunk* before being reported: events are dropped one at a time (to a
fixpoint) and the survivors relaxed (rates halved, stalls and skips
shortened) for as long as the campaign still violates an invariant.
The result is a minimal reproducer — typically one or two fault events
— saved as a JSON replay file that ``repro chaos --replay FILE`` (or
:func:`load_replay` + :class:`ChaosCampaign`) re-executes exactly.

A campaign that *crashes* (any unexpected exception) is treated as a
failure with a synthetic ``crash`` violation: the chaos harness must
never take the workflow down, only degrade it.
"""

from __future__ import annotations

import json
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.chaos.harness import CampaignReport, ChaosCampaign, ChaosConfig
from repro.chaos.invariants import Violation
from repro.chaos.schedule import FaultEvent, FaultSchedule
from repro.util.rng import RngStream

__all__ = ["CampaignFuzzer", "FuzzFailure", "FuzzResult",
           "save_replay", "load_replay"]

REPLAY_VERSION = 1


def save_replay(path: str, schedule: FaultSchedule, config: ChaosConfig) -> None:
    """Write a self-contained reproducer file for ``repro chaos --replay``."""
    payload = {
        "version": REPLAY_VERSION,
        "config": {
            "seed": config.seed,
            "rounds": config.rounds,
            "round_seconds": config.round_seconds,
            "nshards": config.nshards,
            "replication": config.replication,
            "durable": config.durable,
        },
        "events": schedule.to_json(),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_replay(path: str) -> tuple:
    """Read a reproducer file; returns ``(schedule, config)``."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("version") != REPLAY_VERSION:
        raise ValueError(f"unsupported replay version {payload.get('version')!r}")
    config = ChaosConfig(**payload["config"])
    return FaultSchedule.from_json(payload["events"]), config


@dataclass
class FuzzFailure:
    """One failing campaign: the original and the shrunk reproducer."""

    campaign_index: int
    schedule: FaultSchedule
    shrunk: FaultSchedule
    violations: List[Violation]
    shrink_runs: int

    def to_json(self) -> Dict[str, Any]:
        return {
            "campaign_index": self.campaign_index,
            "schedule": self.schedule.to_json(),
            "shrunk": self.shrunk.to_json(),
            "violations": [v.to_json() for v in self.violations],
            "shrink_runs": self.shrink_runs,
        }


@dataclass
class FuzzResult:
    """Outcome of one fuzzing session."""

    campaigns: int = 0
    reports: List[CampaignReport] = field(default_factory=list)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


class CampaignFuzzer:
    """Sample seeded schedules, run campaigns, shrink any failure."""

    def __init__(
        self,
        seed: int = 0,
        rounds: int = 10,
        round_seconds: float = 60.0,
        nshards: int = 4,
        replication: int = 2,
        max_events: int = 8,
        campaign_factory=None,
    ) -> None:
        self.seed = seed
        self.rounds = rounds
        self.round_seconds = round_seconds
        self.nshards = nshards
        self.replication = replication
        self.max_events = max_events
        # Test hook: the planted-bug tests swap in a factory that builds
        # a deliberately broken campaign.
        self._factory = campaign_factory or (
            lambda schedule, config: ChaosCampaign(schedule, config)
        )
        self._runs = 0

    def _config(self) -> ChaosConfig:
        return ChaosConfig(
            seed=self.seed, rounds=self.rounds,
            round_seconds=self.round_seconds, nshards=self.nshards,
            replication=self.replication,
        )

    def run_one(self, schedule: FaultSchedule) -> CampaignReport:
        """Run one campaign; a crash becomes a ``crash`` violation."""
        self._runs += 1
        config = self._config()
        try:
            return self._factory(schedule, config).run()
        except Exception:
            tb = traceback.format_exc(limit=4)
            return CampaignReport(
                seed=config.seed, rounds=config.rounds,
                schedule=schedule.to_json(),
                violations=[Violation("crash", -1, tb.strip())],
                counters={}, chaos={}, store={}, nspans=0,
            )

    def sample_schedule(self, index: int) -> FaultSchedule:
        rng = RngStream(self.seed).child(f"campaign-{index}")
        return FaultSchedule.sample(
            rng, rounds=self.rounds, round_seconds=self.round_seconds,
            nshards=self.nshards, max_events=self.max_events,
        )

    def run(self, ncampaigns: int, shrink: bool = True) -> FuzzResult:
        result = FuzzResult(campaigns=ncampaigns)
        for i in range(ncampaigns):
            schedule = self.sample_schedule(i)
            report = self.run_one(schedule)
            result.reports.append(report)
            if report.ok:
                continue
            runs_before = self._runs
            shrunk = self.shrink(schedule) if shrink else schedule
            result.failures.append(FuzzFailure(
                campaign_index=i,
                schedule=schedule,
                shrunk=shrunk,
                violations=list(report.violations),
                shrink_runs=self._runs - runs_before,
            ))
        return result

    # --- shrinking ----------------------------------------------------------

    def _still_fails(self, schedule: FaultSchedule) -> bool:
        return not self.run_one(schedule).ok

    def shrink(self, schedule: FaultSchedule) -> FaultSchedule:
        """Minimize a failing schedule by dropping, then relaxing, events.

        Drop pass (ddmin with chunk size 1, to a fixpoint): remove each
        event in turn and keep the removal whenever the campaign still
        fails. Relax pass: halve delay/garble rates, shorten stalls and
        clock skips — keeping each relaxation that preserves failure.
        Every probe is a full deterministic campaign, so the shrunk
        schedule provably still reproduces the violation.
        """
        current = schedule
        changed = True
        while changed and len(current) > 1:
            changed = False
            for i in range(len(current)):
                candidate = current.without(i)
                if self._still_fails(candidate):
                    current = candidate
                    changed = True
                    break
        current = self._relax(current)
        return current

    def _relax(self, schedule: FaultSchedule) -> FaultSchedule:
        current = schedule
        for i, event in enumerate(current.events):
            relaxed = self._relaxed_event(event)
            if relaxed is None:
                continue
            candidate = current.replaced(i, relaxed)
            if self._still_fails(candidate):
                current = candidate
        return current

    @staticmethod
    def _relaxed_event(event: FaultEvent) -> Optional[FaultEvent]:
        if event.kind in ("delay", "garble") and event.arg > 0.1:
            return FaultEvent(event.at, event.kind, round(event.arg / 2, 4))
        if event.kind == "stall" and event.arg > 1:
            return FaultEvent(event.at, event.kind, float(int(event.arg) // 2))
        if event.kind == "clock_skip" and event.arg > 30.0:
            return FaultEvent(event.at, event.kind, round(event.arg / 2, 4))
        return None
