"""Ablation S4 (§4.4 Task 2): binned sampler vs farthest-point sampler.

Paper: the FPS Patch Selector caps its queues at 35,000 candidates and
needs 3-4 minutes to re-rank them when full; the new binned Frame
Selector provides "significantly faster updates to ranking: 3-4 minutes
for 9M candidates" — about 165x more data for the same budget.

We measure the actual select-time cost of each sampler as the candidate
count grows, and verify the binned sampler's cost stays flat while the
FPS cost grows with the candidate mass.
"""

import time

import numpy as np
from conftest import record_json, report

from repro.sampling.ann import KDTreeIndex
from repro.sampling.binned import BinnedSampler, BinSpec
from repro.sampling.fps import FarthestPointSampler
from repro.sampling.points import Point

FPS_COUNTS = [2_000, 8_000, 35_000]
BINNED_COUNTS = [35_000, 200_000, 1_000_000]
BENCH_JSON = "BENCH_sampler.json"


def _fps_select_cost(n, rng):
    sampler = FarthestPointSampler(dim=9, queue_cap=max(FPS_COUNTS))
    sampler.seed_selected(
        [Point(id=f"sel{i}", coords=rng.random(9)) for i in range(200)]
    )
    coords = rng.random((n, 9))
    for i in range(n):
        sampler.add(Point(id=f"p{i}", coords=coords[i]))
    t0 = time.perf_counter()
    sampler.select(1)
    return time.perf_counter() - t0


def _binned_select_cost(n, rng):
    sampler = BinnedSampler(
        [BinSpec(0, 1, 10)] * 3, rng=np.random.default_rng(0)
    )
    coords = rng.random((n, 3))
    for i in range(n):
        sampler.add(Point(id=f"p{i}", coords=coords[i]))
    t0 = time.perf_counter()
    sampler.select(1)
    return time.perf_counter() - t0


def test_ablation_sampler_capacity(benchmark):
    rng = np.random.default_rng(0)

    def sweep():
        fps = [(n, _fps_select_cost(n, rng)) for n in FPS_COUNTS]
        binned = [(n, _binned_select_cost(n, rng)) for n in BINNED_COUNTS]
        return fps, binned

    fps, binned = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["farthest-point sampler (9-D, rank update per select):"]
    for n, t in fps:
        lines.append(f"  {n:>9,} candidates: {t*1e3:9.2f} ms/select")
    lines.append("binned sampler (3-D histogram):")
    for n, t in binned:
        lines.append(f"  {n:>9,} candidates: {t*1e3:9.2f} ms/select")
    ratio = BINNED_COUNTS[-1] / FPS_COUNTS[-1]
    lines.append(f"capacity at comparable select cost: "
                 f"{ratio:.0f}x more candidates for the binned sampler "
                 "(paper: ~165x, 9M vs 35k)")
    report("ablation_sampler_scaling", lines)
    record_json(BENCH_JSON, "capacity_sweep", {
        "fps_select_ms": {str(n): t * 1e3 for n, t in fps},
        "binned_select_ms": {str(n): t * 1e3 for n, t in binned},
        "capacity_ratio": ratio,
    })

    # FPS select cost grows with candidates; binned stays (near) flat.
    fps_growth = fps[-1][1] / max(fps[0][1], 1e-9)
    binned_growth = binned[-1][1] / max(binned[0][1], 1e-9)
    assert fps_growth > 3.0
    assert binned_growth < 3.0
    # At 1M candidates the binned select is cheaper than FPS at 35k.
    assert binned[-1][1] < fps[-1][1]


def test_ablation_add_cost_is_flat_for_both(benchmark):
    """Ingest must stay O(1) for both samplers (candidates arrive from
    thousands of simulations continuously)."""
    rng = np.random.default_rng(1)

    def measure_adds():
        out = {}
        fps = FarthestPointSampler(dim=9, queue_cap=100_000)
        coords = rng.random((50_000, 9))
        t0 = time.perf_counter()
        for i in range(50_000):
            fps.add(Point(id=f"p{i}", coords=coords[i]))
        out["fps"] = (time.perf_counter() - t0) / 50_000
        binned = BinnedSampler([BinSpec(0, 1, 10)] * 3)
        coords3 = rng.random((50_000, 3))
        t0 = time.perf_counter()
        for i in range(50_000):
            binned.add(Point(id=f"p{i}", coords=coords3[i]))
        out["binned"] = (time.perf_counter() - t0) / 50_000
        return out

    per_add = benchmark.pedantic(measure_adds, rounds=1, iterations=1)
    report("ablation_sampler_ingest", [
        f"per-candidate ingest: fps {per_add['fps']*1e6:.1f} us, "
        f"binned {per_add['binned']*1e6:.1f} us",
    ])
    record_json(BENCH_JSON, "ingest_per_candidate_us", {
        "fps": per_add["fps"] * 1e6,
        "binned": per_add["binned"] * 1e6,
    })
    assert per_add["fps"] < 1e-3
    assert per_add["binned"] < 1e-3


def _seed_reference_pick_seconds(sampler, queue="default"):
    """One pick under the seed semantics, measured without mutating the
    sampler: stack every queued candidate into a fresh matrix, rebuild a
    KD-tree over the selected set, query all candidates, full descending
    argsort. This is exactly the per-pick work the pre-incremental
    implementation performed."""
    t0 = time.perf_counter()
    pts = sampler.queues[queue].points()
    cand = np.vstack([p.coords for p in pts])
    ref = KDTreeIndex()
    ref.build(sampler.selected_coords())
    dists = ref.nearest_distance(cand)
    order = np.argsort(-dists, kind="stable")
    _ = pts[int(order[0])]
    return time.perf_counter() - t0


def _loaded_fps(rng, n=35_000, nselected=200):
    sampler = FarthestPointSampler(dim=9, queue_cap=n)
    sampler.seed_selected(
        [Point(id=f"sel{i}", coords=rng.random(9)) for i in range(nselected)]
    )
    coords = rng.random((n, 9))
    sampler.add_batch([Point(id=f"p{i}", coords=coords[i]) for i in range(n)])
    return sampler


def test_ablation_incremental_pick_vs_seed_reference(benchmark):
    """Tentpole acceptance: a warm incremental pick at the paper's 35k
    queue cap is >=10x cheaper than the seed's rebuild-and-rerank pick,
    and batched select(k=64) amortizes >=5x below a cold single pick."""
    rng = np.random.default_rng(7)

    def sweep():
        s = _loaded_fps(rng)
        seed_cost = _seed_reference_pick_seconds(s)
        t0 = time.perf_counter()
        s.select(1)  # prices all 35k pending rows once
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        s.select(1)  # one delta fold + argmax
        warm = time.perf_counter() - t0
        s2 = _loaded_fps(rng)
        t0 = time.perf_counter()
        s2.select(1)
        cold2 = time.perf_counter() - t0
        t0 = time.perf_counter()
        s2.select(64)
        batch64 = time.perf_counter() - t0
        return seed_cost, cold, warm, cold2, batch64

    seed_cost, cold, warm, cold2, batch64 = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    amortized = batch64 / 64
    warm_speedup = seed_cost / warm
    batch_speedup = cold2 / amortized
    report("ablation_incremental_pick", [
        f"35,000 candidates, 200 selected (9-D):",
        f"  seed-reference pick (vstack + rebuild + rerank): {seed_cost*1e3:8.2f} ms",
        f"  incremental cold pick (prices all pending):      {cold*1e3:8.2f} ms",
        f"  incremental warm pick (delta fold + argmax):     {warm*1e3:8.2f} ms",
        f"  select(64) amortized per pick:                   {amortized*1e3:8.2f} ms",
        f"warm pick speedup vs seed reference: {warm_speedup:.1f}x (need >=10x)",
        f"batched pick speedup vs cold pick:   {batch_speedup:.1f}x (need >=5x)",
    ])
    record_json(BENCH_JSON, "incremental_pick_35k", {
        "seed_reference_pick_ms": seed_cost * 1e3,
        "cold_select1_ms": cold * 1e3,
        "warm_select1_ms": warm * 1e3,
        "select64_amortized_ms": amortized * 1e3,
        "warm_speedup_vs_seed": warm_speedup,
        "batch_speedup_vs_cold_single": batch_speedup,
    })
    assert warm_speedup >= 10.0
    assert batch_speedup >= 5.0


def test_ablation_binned_batch_ingest(benchmark):
    """add_batch (array form) must beat the per-point loop by >=5x per
    candidate — the difference between minutes and seconds at the
    paper's 9M-candidate scale."""
    rng = np.random.default_rng(8)

    def sweep():
        specs = [BinSpec(0, 1, 10)] * 3
        coords_small = rng.random((200_000, 3))
        s1 = BinnedSampler(specs)
        t0 = time.perf_counter()
        for i in range(200_000):
            s1.add(Point(id=f"p{i}", coords=coords_small[i]))
        per_point = (time.perf_counter() - t0) / 200_000
        coords_big = rng.random((1_000_000, 3))
        ids = [f"q{i}" for i in range(1_000_000)]
        s2 = BinnedSampler(specs)
        t0 = time.perf_counter()
        accepted = s2.add_batch(ids=ids, coords=coords_big)
        batch_total = time.perf_counter() - t0
        assert accepted == 1_000_000
        return per_point, batch_total

    per_point, batch_total = benchmark.pedantic(sweep, rounds=1, iterations=1)
    batch_rate = batch_total / 1_000_000
    speedup = per_point / batch_rate
    report("ablation_binned_batch_ingest", [
        f"per-point add loop:        {per_point*1e6:7.2f} us/candidate (200k sample)",
        f"add_batch (1M, array form): {batch_rate*1e6:7.2f} us/candidate "
        f"({batch_total:.2f} s total)",
        f"batch ingest speedup: {speedup:.1f}x (need >=5x)",
    ])
    record_json(BENCH_JSON, "binned_batch_ingest_1M", {
        "per_point_us": per_point * 1e6,
        "batch_us_per_candidate": batch_rate * 1e6,
        "batch_total_s": batch_total,
        "speedup": speedup,
    })
    assert speedup >= 5.0
