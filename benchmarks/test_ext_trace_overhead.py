"""Extension bench: disabled-tracing overhead on the matcher hot loop.

The tracing design contract (OBSERVABILITY.md) is that disabled tracing
costs one module-global check on the scheduler's hot path. With tracing
off, ``Matcher.match`` adds exactly one ``trace.enabled()`` call and one
extra call frame around ``Matcher._match``; this bench prices that
machinery in a tight loop (where timer noise amortizes to sub-ns) and
holds it under 5% of the measured per-match cost. A direct end-to-end
``match`` vs ``_match`` A/B is reported for context but not asserted —
on shared boxes its run-to-run jitter (several percent of a ~20 us
loop) swamps the ~50 ns signal being bounded.
"""

import time

from conftest import report

from repro import trace
from repro.sched.jobspec import JobSpec
from repro.sched.matcher import Matcher, MatchPolicy
from repro.sched.resources import summit_like

NODES = 64
ROUNDS = 5
MATCHES = 2_000
TIGHT = 300_000


def _matcher():
    return Matcher(summit_like(NODES), MatchPolicy.FIRST_MATCH)


def _time_matches(call, n=MATCHES):
    """Seconds per match/release pair, best of ROUNDS (noise floor)."""
    spec = JobSpec(name="cg-sim", ncores=4, ngpus=1)
    best = float("inf")
    for _ in range(ROUNDS):
        matcher = _matcher()
        t0 = time.perf_counter()
        for _ in range(n):
            alloc = call(matcher, spec)
            matcher.release(alloc)
        best = min(best, (time.perf_counter() - t0) / n)
    return best


def _tight(fn, n=TIGHT):
    """Seconds per call in a tight loop, best of ROUNDS."""
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        for _ in range(n):
            fn(1)
        best = min(best, (time.perf_counter() - t0) / n)
    return best


def _inner(x):
    return x


def _guarded(x):
    # Replica of Matcher.match's disabled path: one trace.enabled()
    # check plus one pass-through call frame.
    if not trace.enabled():
        return _inner(x)


def test_disabled_tracing_overhead_under_5pct():
    trace.disable()

    # The contract's numerator: what the guard machinery adds per call.
    guard_ns = (_tight(_guarded) - _tight(_inner)) * 1e9
    # The denominator: what one match actually costs.
    base = _time_matches(lambda m, s: m._match(s))
    overhead_pct = 100.0 * (guard_ns * 1e-9) / base

    # Informational: end-to-end A/B and the disabled no-op span path.
    guarded = _time_matches(lambda m, s: m.match(s))
    ab_pct = 100.0 * (guarded - base) / base
    t0 = time.perf_counter()
    for _ in range(TIGHT):
        with trace.span("schedule.match"):
            pass
    noop_span_ns = (time.perf_counter() - t0) / TIGHT * 1e9

    # One traced run for scale (not part of the assertion).
    tracer = trace.enable(capacity=MATCHES * ROUNDS + 1)
    traced = _time_matches(lambda m, s: m.match(s))
    nspans = len(tracer.rows())
    trace.disable()

    report("trace_overhead", [
        f"matcher hot loop ({NODES} Summit-like nodes, first-match, "
        f"{MATCHES} match/release pairs, best of {ROUNDS}):",
        f"  unguarded _match        {base * 1e6:8.2f} us/match",
        f"  guard machinery         {guard_ns:8.1f} ns/call   "
        f"overhead {overhead_pct:+.2f}% (asserted < 5%)",
        f"  guarded match (off)     {guarded * 1e6:8.2f} us/match   "
        f"end-to-end A/B {ab_pct:+.2f}% (noise-dominated, informational)",
        f"  guarded match (tracing) {traced * 1e6:8.2f} us/match   "
        f"({nspans} spans recorded)",
        f"  disabled no-op span     {noop_span_ns:8.1f} ns/span",
        "contract: disabled overhead < 5% of the hot loop",
    ])

    assert overhead_pct < 5.0, (
        f"disabled tracing costs {overhead_pct:.2f}% of the matcher hot loop"
    )
    assert noop_span_ns < 5_000  # the no-op path must stay allocation-light
