"""The single configuration switch: open_store URL routing."""

import pytest

from repro.datastore import FSStore, KVStore, StoreError, TaridxStore, open_store


class TestOpenStore:
    def test_fs_scheme(self, tmp_path):
        s = open_store(f"fs://{tmp_path}/data")
        assert isinstance(s, FSStore)
        s.close()

    def test_taridx_scheme(self, tmp_path):
        s = open_store(f"taridx://{tmp_path}/arch")
        assert isinstance(s, TaridxStore)
        s.close()

    def test_kv_scheme_default_servers(self):
        s = open_store("kv://")
        assert isinstance(s, KVStore)
        assert len(s.cluster.servers) == 1

    def test_kv_scheme_with_count(self):
        s = open_store("kv://20")
        assert len(s.cluster.servers) == 20

    def test_netkv_scheme(self):
        from repro.datastore import NetKVServer, NetKVStore

        servers = [NetKVServer().start() for _ in range(2)]
        try:
            url = "netkv://" + ",".join(f"{h}:{p}" for h, p in
                                        (s.address for s in servers))
            store = open_store(url)
            assert isinstance(store, NetKVStore)
            assert len(store.cluster.clients) == 2
            store.write("a", b"x")
            assert store.read("a") == b"x"
            store.close()
        finally:
            for s in servers:
                s.stop()

    def test_netkv_scheme_rejects_bad_addresses(self):
        with pytest.raises(StoreError):
            open_store("netkv://")
        with pytest.raises(StoreError):
            open_store("netkv://localhost")  # no port
        with pytest.raises(StoreError):
            open_store("netkv://host:notaport")

    def test_unknown_scheme(self):
        with pytest.raises(StoreError):
            open_store("s3://bucket")

    def test_missing_separator(self):
        with pytest.raises(StoreError):
            open_store("/just/a/path")

    def test_kwargs_forwarded(self, tmp_path):
        s = open_store(f"taridx://{tmp_path}/a", max_entries=5)
        assert s.max_entries == 5
        s.close()

    def test_same_payload_all_backends(self, tmp_path):
        """The paper's pitch: one payload, any backend, one-line switch."""
        payload = b"numpy archive bytes"
        urls = [f"fs://{tmp_path}/fs", f"taridx://{tmp_path}/tar", "kv://3"]
        for url in urls:
            with open_store(url) as s:
                s.write("patch/000001", payload)
                assert s.read("patch/000001") == payload
