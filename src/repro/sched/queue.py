"""The queue manager (Q): FCFS, no backfilling, sync or async Q↔R.

§5.2 diagnoses the 4000-node bottleneck: "Flux's queue manager (Q) and
resource graph matcher (R) communicate synchronously. Our scaling run
exposed this bottleneck where Q spends the bulk of its time handling
new job submissions as opposed to forwarding jobs to R." The fix made
that communication asynchronous.

:class:`QueueManager` models both modes in virtual time. Work is
accounted in seconds: every intake costs ``submit_cost`` and every
match attempt costs ``match_overhead + per-vertex traversal``. A
scheduling *cycle* has a fixed time budget:

- ``SYNC``: intake and matching share one budget, intake first — so a
  sustained submission stream starves the matcher, and job starts come
  in chunks when the stream pauses (Fig. 6, 4000 nodes).
- ``ASYNC``: intake and matching each get a full budget (they run
  concurrently), so starts track submissions smoothly.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.sched.jobspec import JobRecord, JobSpec, JobState
from repro.sched.matcher import Matcher

__all__ = ["QueueMode", "QueueCosts", "QueueManager", "CycleReport"]


class QueueMode(enum.Enum):
    SYNC = "sync"
    ASYNC = "async"


@dataclass(frozen=True)
class QueueCosts:
    """Virtual-time cost model for queue-manager work.

    Defaults are calibrated so a ~100 jobs/min stream loads a 1000-node
    partition smoothly with the exhaustive matcher while the same stream
    at 4000 nodes exhibits the paper's chunking (see the Fig. 6 bench).
    """

    submit_cost: float = 0.25
    """Seconds of Q time to ingest one submission (script write, RPC)."""

    match_overhead: float = 0.002
    """Fixed seconds per match attempt (Q→R round trip)."""

    vertex_cost: float = 2.0e-6
    """Seconds per resource-graph vertex the matcher visits."""


@dataclass
class CycleReport:
    """What one scheduling cycle accomplished."""

    time: float
    intaken: int = 0
    started: List[JobRecord] = field(default_factory=list)
    intake_time: float = 0.0
    match_time: float = 0.0


class QueueManager:
    """FCFS queue (no backfilling) in front of a :class:`Matcher`."""

    def __init__(
        self,
        matcher: Matcher,
        mode: QueueMode = QueueMode.SYNC,
        costs: Optional[QueueCosts] = None,
        backfill_window: int = 0,
    ) -> None:
        if backfill_window < 0:
            raise ValueError("backfill_window must be >= 0")
        self.matcher = matcher
        self.mode = mode
        self.costs = costs or QueueCosts()
        self.backfill_window = backfill_window
        self.backfilled = 0  # jobs started ahead of a blocked head
        self.inbox: Deque[JobRecord] = deque()   # submitted, not yet ingested
        self.pending: Deque[JobRecord] = deque()  # ingested, awaiting match
        self.running: Dict[int, JobRecord] = {}
        self.history: List[CycleReport] = []

    # --- submission ------------------------------------------------------

    def submit(self, record: JobRecord) -> None:
        """Drop a job into Q's inbox (asynchronous to the caller)."""
        self.inbox.append(record)

    @property
    def backlog(self) -> int:
        """Jobs submitted but not yet running."""
        return len(self.inbox) + len(self.pending)

    # --- one scheduling cycle ------------------------------------------------

    def cycle(self, now: float, budget: float) -> CycleReport:
        """Run one cycle of Q work within ``budget`` seconds of Q time.

        Returns the jobs started this cycle; the caller (FluxInstance)
        is responsible for scheduling their completions.
        """
        report = CycleReport(time=now)
        if self.mode is QueueMode.SYNC:
            remaining = self._do_intake(report, budget)
            self._do_matching(report, now, remaining)
        else:
            self._do_intake(report, budget)
            self._do_matching(report, now, budget)
        self.history.append(report)
        return report

    def _do_intake(self, report: CycleReport, budget: float) -> float:
        """Move inbox -> pending until the inbox drains or budget runs out.

        Returns the unused budget.
        """
        cost = self.costs.submit_cost
        while self.inbox and budget >= cost:
            self.pending.append(self.inbox.popleft())
            budget -= cost
            report.intaken += 1
            report.intake_time += cost
        return budget

    def _do_matching(self, report: CycleReport, now: float, budget: float) -> None:
        """FCFS match from the head of pending; stop on first failure.

        The campaign's throughput-oriented policy is strict FCFS with no
        backfilling: a blocked head makes everyone wait. Flux's "many
        policy knobs" include backfilling, modeled here as a bounded
        window: when the head cannot place, up to ``backfill_window``
        later jobs are tried this cycle (the head keeps its position).
        """
        while self.pending and budget > 0:
            head = self.pending[0]
            cost = self._attempt(head, now, report)
            budget -= cost
            if head.state is JobState.RUNNING:
                self.pending.popleft()
                continue
            # Head blocked. Optionally try a bounded backfill window.
            if self.backfill_window:
                budget = self._backfill(report, now, budget)
            break

    def _attempt(self, record: JobRecord, now: float, report: CycleReport) -> float:
        """Try to place one job; returns the Q-time cost of the attempt."""
        visits_before = self.matcher.stats.vertices_visited
        alloc = self.matcher.match(record.spec)
        cost = (
            self.costs.match_overhead
            + (self.matcher.stats.vertices_visited - visits_before) * self.costs.vertex_cost
        )
        report.match_time += cost
        if alloc is not None:
            record.allocation = alloc
            record.state = JobState.RUNNING
            record.start_time = now
            self.running[record.job_id] = record
            report.started.append(record)
        return cost

    def _backfill(self, report: CycleReport, now: float, budget: float) -> float:
        """Try jobs behind a blocked head, up to the window size."""
        candidates = list(self.pending)[1: 1 + self.backfill_window]
        for record in candidates:
            if budget <= 0:
                break
            budget -= self._attempt(record, now, report)
            if record.state is JobState.RUNNING:
                self.pending.remove(record)
                self.backfilled += 1
        return budget

    # --- completion/cancellation (driven by FluxInstance) ----------------

    def finish(self, record: JobRecord, now: float, state: JobState = JobState.COMPLETED) -> None:
        if record.job_id not in self.running:
            raise KeyError(f"job {record.job_id} is not running")
        del self.running[record.job_id]
        record.state = state
        record.end_time = now
        if record.allocation is not None:
            self.matcher.release(record.allocation)
            record.allocation = None

    def cancel_pending(self, record: JobRecord, now: float) -> bool:
        """Cancel a job that has not started; returns False if not queued."""
        for q in (self.inbox, self.pending):
            try:
                q.remove(record)
            except ValueError:
                continue
            record.state = JobState.CANCELLED
            record.end_time = now
            return True
        return False
