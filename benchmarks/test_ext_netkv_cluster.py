"""Extension bench: pipelined cluster batches vs per-key round trips.

The feedback managers' hot shape is hundreds of tiny reads and writes
per iteration (§4.4, Fig. 7/8). Against a networked store each per-key
call pays a full round trip; the cluster's mset/mget pack a shard's
whole batch into one MSET/MGET exchange. This bench measures that win
on loopback TCP — the most pessimistic setting for pipelining, since
round trips are already as cheap as they get — and records it to the
repo-root ledger ``BENCH_netkv_cluster.json``.
"""

import time

import pytest
from conftest import record_json, report

from repro.datastore.netkv import NetKVCluster, NetKVServer, TransportConfig

BENCH_JSON = "BENCH_netkv_cluster.json"
NKEYS = 600
PAYLOAD = b"x" * 64


@pytest.mark.multi_server
class TestPipeliningWin:
    def test_batched_ops_beat_per_key_loops(self):
        servers = [NetKVServer().start() for _ in range(2)]
        cluster = NetKVCluster([s.address for s in servers],
                               config=TransportConfig())
        items = [(f"bench/{i:04d}", PAYLOAD) for i in range(NKEYS)]
        keys = [k for k, _ in items]
        try:
            t0 = time.perf_counter()
            for k, v in items:
                cluster.set(k, v)
            t_set_loop = time.perf_counter() - t0

            t0 = time.perf_counter()
            for k, v in items:
                assert cluster.get(k) == v
            t_get_loop = time.perf_counter() - t0

            t0 = time.perf_counter()
            cluster.mset(items)
            t_mset = time.perf_counter() - t0

            t0 = time.perf_counter()
            values = cluster.mget(keys)
            t_mget = time.perf_counter() - t0
            assert values == [v for _, v in items]

            write_speedup = t_set_loop / t_mset
            read_speedup = t_get_loop / t_mget
            report("ext_netkv_cluster_pipelining", [
                f"keys                 {NKEYS} x {len(PAYLOAD)} B",
                f"per-key set loop     {t_set_loop:.3f} s "
                f"({NKEYS / t_set_loop:,.0f} ops/s)",
                f"pipelined mset       {t_mset:.3f} s "
                f"({NKEYS / t_mset:,.0f} ops/s)",
                f"per-key get loop     {t_get_loop:.3f} s "
                f"({NKEYS / t_get_loop:,.0f} ops/s)",
                f"pipelined mget       {t_mget:.3f} s "
                f"({NKEYS / t_mget:,.0f} ops/s)",
                f"write speedup        {write_speedup:.1f}x (need >=5x)",
                f"read speedup         {read_speedup:.1f}x (need >=5x)",
                f"batched requests     {cluster.stats.batched_requests} "
                f"({cluster.stats.batched_keys} keys, max "
                f"{cluster.stats.max_batch_keys}/req)",
            ])
            record_json(BENCH_JSON, "pipelining_600x64B", {
                "nkeys": NKEYS,
                "payload_bytes": len(PAYLOAD),
                "set_loop_s": t_set_loop,
                "mset_s": t_mset,
                "get_loop_s": t_get_loop,
                "mget_s": t_mget,
                "write_speedup": write_speedup,
                "read_speedup": read_speedup,
                "batched_requests": cluster.stats.batched_requests,
                "max_batch_keys": cluster.stats.max_batch_keys,
            })
            # Acceptance: one round trip per shard-batch instead of one
            # per key must be worth at least 5x even on loopback.
            assert write_speedup >= 5.0
            assert read_speedup >= 5.0
        finally:
            cluster.close()
            for s in servers:
                s.stop()

    def test_replication_write_amplification_is_bounded(self):
        """Replicated batch writes pay one extra exchange per extra
        copy, not one per key: replication=2 mset should cost well
        under the 2x of naively doubled per-key writes."""
        servers = [NetKVServer().start() for _ in range(3)]
        items = [(f"amp/{i:04d}", PAYLOAD) for i in range(NKEYS)]
        timings = {}
        try:
            for repl in (1, 2):
                cluster = NetKVCluster([s.address for s in servers],
                                       config=TransportConfig(),
                                       replication=repl)
                t0 = time.perf_counter()
                cluster.mset(items)
                timings[repl] = time.perf_counter() - t0
                cluster.mdelete([k for k, _ in items])
                cluster.close()
            amplification = timings[2] / timings[1]
            report("ext_netkv_cluster_replication_cost", [
                f"mset {NKEYS} keys, replication=1: {timings[1]:.3f} s",
                f"mset {NKEYS} keys, replication=2: {timings[2]:.3f} s",
                f"write amplification: {amplification:.2f}x (2 copies)",
            ])
            record_json(BENCH_JSON, "replication_write_amplification", {
                "nkeys": NKEYS,
                "mset_r1_s": timings[1],
                "mset_r2_s": timings[2],
                "amplification": amplification,
            })
            assert amplification < 4.0  # sanity: batches stay batched
        finally:
            for s in servers:
                s.stop()
