"""Every markdown cross-reference in the repo's docs must resolve.

Scans all top-level ``*.md`` files for ``[text](target)`` links and
asserts each relative target exists on disk. External links (http/https/
mailto) and pure in-page anchors are skipped; a ``#fragment`` suffix on
a file target is allowed (only the file part is checked).
"""

import glob
import os
import re

import pytest

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DOCS = sorted(glob.glob(os.path.join(ROOT, "*.md")))

# [text](target) — target must not itself contain parens or whitespace.
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def relative_links(path):
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    # Fenced code blocks may contain bracketed text that is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    out = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        out.append(target.split("#", 1)[0])
    return out


def test_docs_were_found():
    assert any(os.path.basename(p) == "README.md" for p in DOCS)


@pytest.mark.parametrize("doc", DOCS, ids=[os.path.basename(p) for p in DOCS])
def test_relative_links_resolve(doc):
    missing = []
    for target in relative_links(doc):
        resolved = os.path.normpath(os.path.join(os.path.dirname(doc), target))
        if not os.path.exists(resolved):
            missing.append(target)
    assert not missing, f"{os.path.basename(doc)} links to missing files: {missing}"


def test_observability_is_cross_linked():
    """The observability guide is reachable from the entry-point docs."""
    for name in ("README.md", "DESIGN.md"):
        with open(os.path.join(ROOT, name), encoding="utf-8") as fh:
            assert "OBSERVABILITY.md" in fh.read(), f"{name} must link the guide"


def test_chaos_guide_is_cross_linked():
    """The chaos guide is reachable from every entry-point doc."""
    for name in ("README.md", "DESIGN.md", "OBSERVABILITY.md"):
        with open(os.path.join(ROOT, name), encoding="utf-8") as fh:
            assert "CHAOS.md" in fh.read(), f"{name} must link CHAOS.md"


def test_operations_handbook_is_cross_linked():
    """The operator handbook is reachable from every entry-point doc."""
    for name in ("README.md", "DESIGN.md", "OBSERVABILITY.md"):
        with open(os.path.join(ROOT, name), encoding="utf-8") as fh:
            assert "OPERATIONS.md" in fh.read(), f"{name} must link OPERATIONS.md"


def test_operations_handbook_documents_the_knobs():
    """OPERATIONS.md must keep the service knobs and runbook discoverable."""
    with open(os.path.join(ROOT, "OPERATIONS.md"), encoding="utf-8") as fh:
        text = fh.read()
    for needle in ("repro serve", "--share", "--max-campaigns-per-tenant",
                   "netkv --serve", "netkv --health", "/v1/drain",
                   "REPRO_SKIP_SERVICE", "netkv --snapshot",
                   "netkv --migrate", "--persist", "--no-fsync",
                   "REPRO_SKIP_PERSIST"):
        assert needle in text, f"OPERATIONS.md no longer documents {needle}"


def test_design_documents_the_partitioned_matcher():
    """DESIGN.md must keep the partitioned-matcher machinery discoverable."""
    with open(os.path.join(ROOT, "DESIGN.md"), encoding="utf-8") as fh:
        text = fh.read()
    for needle in ("partition_size", "partitions_skipped", "BACKFILL", "GANG",
                   "preempt", "match_gang", "schedule.gang", "matcher_scale",
                   "REPRO_SKIP_MATCHER_SCALE", "BENCH_matcher.json",
                   "test_ext_matcher_scale.py"):
        assert needle in text, f"DESIGN.md no longer documents {needle}"


def test_experiments_records_the_matcher_scale_sweep():
    """EXPERIMENTS.md must carry the 4k->40k sweep row and its ledger."""
    with open(os.path.join(ROOT, "EXPERIMENTS.md"), encoding="utf-8") as fh:
        text = fh.read()
    for needle in ("test_ext_matcher_scale.py", "BENCH_matcher.json",
                   "REPRO_SKIP_MATCHER_SCALE"):
        assert needle in text, f"EXPERIMENTS.md no longer documents {needle}"


def test_chaos_guide_documents_the_knobs():
    """CHAOS.md must keep the operational knobs discoverable."""
    with open(os.path.join(ROOT, "CHAOS.md"), encoding="utf-8") as fh:
        text = fh.read()
    for needle in ("REPRO_CHAOS_CAMPAIGNS", "--replay", "--save-failing",
                   "counter_conservation", "selector_equivalence",
                   "tombstone_resurrection", "crash_restart", "reshard",
                   "durability_after_crash"):
        assert needle in text, f"CHAOS.md no longer documents {needle}"
