"""Fig. 5: resource-occupancy distribution over all profile events.

Paper headline: "the GPU occupancy was over 98% for more than 83% of
the total time", average 93.73%, median 99.93%; CPU occupancy averaged
54.12% with a median of 50.48% (low by design — setup jobs run only
when needed).
"""

import numpy as np
from conftest import report

from repro.util.stats import Histogram, fraction_at_least


def test_fig5_gpu_occupancy(campaign_result, benchmark):
    gpu = np.array([e.gpu_occupancy for e in campaign_result.profile_events])

    frac98 = benchmark(lambda: fraction_at_least(gpu, 0.98))
    hist = Histogram.linear(0.0, 1.0, 20)
    hist.add(gpu)
    lines = [
        f"profile events: {gpu.size} (10-min cadence across all runs)",
        f"GPU occupancy >= 98% for {frac98:.1%} of events (paper: >83%)",
        f"mean {gpu.mean():.2%} (paper 93.73%), median {np.median(gpu):.2%} "
        "(paper 99.93%)",
        "distribution (% occupancy | fraction of events):",
    ]
    norm = hist.normalized()
    for (lo, hi, _n), frac in zip(hist.as_series(), norm):
        if frac > 0.001:
            lines.append(f"  {lo*100:3.0f}-{hi*100:3.0f}% | "
                         f"{'#' * int(60 * frac)} {frac:.1%}")
    report("fig5_gpu", lines)

    assert frac98 > 0.83
    assert gpu.mean() > 0.90
    assert np.median(gpu) > 0.99


def test_fig5_cpu_occupancy(campaign_result, benchmark):
    cpu = np.array([e.cpu_occupancy for e in campaign_result.profile_events])

    med = benchmark(lambda: float(np.median(cpu)))
    lines = [
        f"CPU occupancy: mean {cpu.mean():.2%} (paper 54.12%), "
        f"median {med:.2%} (paper 50.48%)",
        "low by design: CPU setup jobs run only when the ready buffers "
        "need refilling (paper §4.4 Task 3)",
    ]
    report("fig5_cpu", lines)

    assert 0.35 <= cpu.mean() <= 0.70
    assert 0.35 <= med <= 0.70
    # CPU occupancy sits well below GPU occupancy.
    gpu = np.array([e.gpu_occupancy for e in campaign_result.profile_events])
    assert cpu.mean() < gpu.mean() - 0.2
