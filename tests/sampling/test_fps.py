"""Tests for the farthest-point (Patch) sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.ann import ExactIndex, ProjectionIndex
from repro.sampling.fps import FarthestPointSampler
from repro.sampling.points import Point


def P(pid, *coords):
    return Point(id=pid, coords=np.array(coords, dtype=float))


class TestBasics:
    def test_add_is_cheap_and_counted(self):
        s = FarthestPointSampler(dim=2)
        for i in range(10):
            s.add(P(f"p{i}", float(i), 0.0))
        assert s.ncandidates() == 10
        assert s.nselected() == 0

    def test_wrong_dim_rejected(self):
        s = FarthestPointSampler(dim=2)
        with pytest.raises(ValueError):
            s.add(P("a", 1.0))

    def test_unknown_queue_rejected(self):
        s = FarthestPointSampler(dim=1)
        with pytest.raises(KeyError):
            s.add(P("a", 1.0), queue="nope")

    def test_invalid_dim_or_k(self):
        with pytest.raises(ValueError):
            FarthestPointSampler(dim=0)
        s = FarthestPointSampler(dim=1)
        with pytest.raises(ValueError):
            s.select(0)

    def test_select_consumes(self):
        s = FarthestPointSampler(dim=1)
        s.add(P("a", 0.0))
        s.add(P("b", 10.0))
        got = s.select(1)
        assert len(got) == 1
        assert s.ncandidates() == 1
        assert s.nselected() == 1

    def test_select_more_than_available(self):
        s = FarthestPointSampler(dim=1)
        s.add(P("a", 0.0))
        got = s.select(5)
        assert len(got) == 1


class TestFarthestPointSemantics:
    def test_first_selection_is_first_arrival(self):
        s = FarthestPointSampler(dim=1)
        for i in range(5):
            s.add(P(f"p{i}", float(i)))
        assert s.select(1)[0].id == "p0"  # all inf-novel; FIFO tie-break

    def test_second_selection_is_farthest_from_first(self):
        s = FarthestPointSampler(dim=1)
        s.add(P("origin", 0.0))
        s.add(P("near", 1.0))
        s.add(P("far", 100.0))
        first = s.select(1)[0]
        assert first.id == "origin"
        second = s.select(1)[0]
        assert second.id == "far"

    def test_batch_select_updates_between_picks(self):
        # Points at 0, 10, 9. After picking 0 then 10, the next most
        # novel is 9 (distance 1) — but a *stale* ranking (distance to
        # {0} only) would also say 9 before 10. Use a layout where
        # staleness changes the answer: 0, 10, 6.
        s = FarthestPointSampler(dim=1)
        s.add(P("a", 0.0))
        s.add(P("b", 10.0))
        s.add(P("c", 6.0))
        got = s.select(3)
        # True FPS: a (first), b (dist 10 vs 6), then c.
        assert [p.id for p in got] == ["a", "b", "c"]

    def test_selected_points_spread_out(self):
        rng = np.random.default_rng(0)
        s = FarthestPointSampler(dim=2)
        # Two tight clusters far apart; FPS must alternate between them.
        cluster_a = rng.normal(0, 0.1, size=(50, 2))
        cluster_b = rng.normal(100, 0.1, size=(50, 2))
        for i, c in enumerate(np.vstack([cluster_a, cluster_b])):
            s.add(Point(id=f"p{i}", coords=c))
        got = s.select(4)
        labels = ["a" if p.coords[0] < 50 else "b" for p in got]
        assert set(labels) == {"a", "b"}
        assert labels[0] != labels[1]  # second pick jumps to the other cluster

    def test_seed_selected_biases_away(self):
        s = FarthestPointSampler(dim=1)
        s.seed_selected([P("prev", 0.0)])
        s.add(P("near", 0.5))
        s.add(P("far", 50.0))
        assert s.select(1)[0].id == "far"

    def test_seed_selected_dim_check(self):
        s = FarthestPointSampler(dim=2)
        with pytest.raises(ValueError):
            s.seed_selected([P("x", 1.0)])


class TestQueues:
    def test_multiple_queues_round_robin(self):
        s = FarthestPointSampler(dim=1, queues=["q1", "q2"])
        s.add(P("a1", 0.0), queue="q1")
        s.add(P("a2", 1.0), queue="q1")
        s.add(P("b1", 100.0), queue="q2")
        got = s.select(2)
        queues_hit = {p.id[0] for p in got}
        assert queues_hit == {"a", "b"}  # one from each queue

    def test_explicit_queue_selection(self):
        s = FarthestPointSampler(dim=1, queues=["q1", "q2"])
        s.add(P("a", 0.0), queue="q1")
        s.add(P("b", 1.0), queue="q2")
        got = s.select(1, queue="q2")
        assert got[0].id == "b"

    def test_round_robin_skips_empty_queues(self):
        s = FarthestPointSampler(dim=1, queues=["q1", "q2", "q3"])
        s.add(P("only", 0.0), queue="q3")
        assert s.select(1)[0].id == "only"

    def test_queue_cap_enforced(self):
        s = FarthestPointSampler(dim=1, queue_cap=5)
        for i in range(20):
            s.add(P(f"p{i}", float(i)))
        assert s.ncandidates() == 5
        assert s.dropped() == 15

    def test_queue_sizes(self):
        s = FarthestPointSampler(dim=1, queues=["q1", "q2"])
        s.add(P("a", 0.0), queue="q1")
        assert s.queue_sizes() == {"q1": 1, "q2": 0}


class TestHistory:
    def test_selection_history_is_replayable(self):
        s = FarthestPointSampler(dim=1)
        for i in range(4):
            s.add(P(f"p{i}", float(i)))
        s.select(2, now=100.0)
        s.select(1, now=200.0)
        rows = s.history_rows()
        assert len(rows) == 2
        assert rows[0]["time"] == 100.0
        assert len(rows[0]["selected"]) == 2
        # Replay: a fresh sampler fed the same stream makes the same picks.
        s2 = FarthestPointSampler(dim=1)
        for i in range(4):
            s2.add(P(f"p{i}", float(i)))
        assert [p.id for p in s2.select(2, now=100.0)] == list(rows[0]["selected"])


class TestIndexBackends:
    def test_approximate_backend_plugs_in(self):
        s = FarthestPointSampler(dim=9, index=ProjectionIndex(ncells=4, nprobe=4))
        rng = np.random.default_rng(1)
        for i in range(100):
            s.add(Point(id=f"p{i}", coords=rng.random(9)))
        got = s.select(5)
        assert len(got) == 5

    def test_update_cost_is_tracked(self):
        s = FarthestPointSampler(dim=2, index=ExactIndex())
        for i in range(50):
            s.add(P(f"p{i}", float(i), 0.0))
        s.select(1)
        assert s.last_update_seconds > 0


class TestValidationAndIntrospection:
    def test_select_unknown_queue_message_lists_queues(self):
        s = FarthestPointSampler(dim=1, queues=["q1", "q2"])
        s.add(P("a", 0.0), queue="q1")
        with pytest.raises(KeyError, match=r"unknown queue 'nope'.*q1.*q2"):
            s.select(1, queue="nope")
        # Validation happens up front: nothing was consumed.
        assert s.ncandidates() == 1
        assert s.nselected() == 0

    def test_add_unknown_queue_message_lists_queues(self):
        s = FarthestPointSampler(dim=1, queues=["q1"])
        with pytest.raises(KeyError, match=r"unknown queue 'nah'.*q1"):
            s.add(P("a", 1.0), queue="nah")

    def test_duplicates_counted_separately_from_dropped(self):
        s = FarthestPointSampler(dim=1, queue_cap=2)
        s.add(P("a", 0.0))
        s.add(P("a", 5.0))  # duplicate id: ignored, not an eviction
        s.add(P("b", 1.0))
        s.add(P("c", 2.0))  # evicts a
        assert s.duplicates() == 1
        assert s.dropped() == 1
        assert s.ncandidates() == 2

    def test_add_batch_returns_accepted_count(self):
        s = FarthestPointSampler(dim=1)
        n = s.add_batch([P("a", 0.0), P("b", 1.0), P("a", 2.0)])
        assert n == 2
        assert s.duplicates() == 1

    def test_engine_stats_shape(self):
        s = FarthestPointSampler(dim=1)
        s.add(P("a", 0.0))
        s.add(P("b", 3.0))
        s.select(2)
        stats = s.engine_stats()
        for key in ("adds", "builds", "queries", "distance_evals",
                    "full_recomputes", "delta_updates"):
            assert key in stats
        assert stats["adds"] == 2


@settings(max_examples=20, deadline=None)
@given(coords=st.lists(st.floats(-100, 100), min_size=3, max_size=30, unique=True))
def test_property_fps_maximizes_min_gap(coords):
    """After k selections, the chosen set's min pairwise gap is maximal
    in the greedy sense: each new pick was the farthest candidate."""
    s = FarthestPointSampler(dim=1)
    for i, x in enumerate(coords):
        s.add(P(f"p{i}", x))
    picks = s.select(3)
    chosen = [float(p.coords[0]) for p in picks]
    rest = sorted(set(coords) - set(chosen))
    if rest:
        # The third pick was at least as far from {first, second} as any
        # remaining candidate is.
        d_third = min(abs(chosen[2] - chosen[0]), abs(chosen[2] - chosen[1]))
        for x in rest:
            d_x = min(abs(x - chosen[0]), abs(x - chosen[1]))
            assert d_third >= d_x - 1e-9
