"""Assemble the complete three-scale RAS-RAF application.

One call to :func:`build_application` wires every piece the paper's
Figure 2 shows: the continuum simulation, the ML patch encoder, the
shared CG force field, a data store (any backend, one URL), the
Workflow Manager with its four job trackers, and both feedback loops.
This is the function the examples and integration tests drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.app.feedback import AAToCGFeedback, CGToContinuumFeedback
from repro.core.patches import PatchCreator
from repro.core.wm import WorkflowConfig, WorkflowManager
from repro.datastore import open_store
from repro.datastore.base import DataStore
from repro.ml.encoder import PatchEncoder, train_metric_encoder
from repro.sched.adapter import SchedulerAdapter, ThreadAdapter
from repro.sims.cg.forcefield import CGForceField, martini_like
from repro.sims.continuum.ddft import ContinuumConfig, ContinuumSim

__all__ = ["Application", "build_application"]


@dataclass
class Application:
    """A fully wired three-scale workflow, ready to run rounds."""

    wm: WorkflowManager
    macro: ContinuumSim
    encoder: PatchEncoder
    forcefield: CGForceField
    store: DataStore
    cg2cont: CGToContinuumFeedback
    aa2cg: AAToCGFeedback

    def run(self, nrounds: int, advance_us: float = 1.0) -> dict:
        """Run coordination rounds; returns the WM counters."""
        return self.wm.run(nrounds, advance_us=advance_us)


def build_application(
    store_url: str = "kv://4",
    grid: int = 16,
    n_lipid_types: int = 2,
    n_proteins: int = 3,
    patch_grid: int = 9,
    pretrain_encoder: bool = False,
    workflow: Optional[WorkflowConfig] = None,
    adapter: Optional[SchedulerAdapter] = None,
    seed: int = 0,
    store: Optional[DataStore] = None,
) -> Application:
    """Build the laptop-scale three-scale application.

    Parameters mirror the deployment knobs a user actually turns: store
    backend (one URL — §4.2's configuration switch), continuum size,
    lipid complexity, and whether to metric-train the patch encoder on
    an initial batch of patches before the campaign starts.

    ``store`` accepts an already-open :class:`DataStore` instead of a
    URL — the control plane passes each campaign a per-tenant
    :class:`~repro.datastore.namespaced.NamespacedStore` view over one
    shared backend this way. When given, ``store_url`` is ignored.
    """
    rng = np.random.default_rng(seed)
    macro = ContinuumSim(
        ContinuumConfig(
            grid=grid,
            n_inner=n_lipid_types,
            n_outer=n_lipid_types,
            n_proteins=n_proteins,
            dt=0.25 if grid <= 24 else 0.05,
            seed=seed,
        )
    )
    store = store if store is not None else open_store(store_url)
    encoder = PatchEncoder(
        input_dim=n_lipid_types * patch_grid**2,
        latent_dim=9,
        hidden=(64, 32),
        rng=np.random.default_rng(seed + 1),
    )
    forcefield = martini_like(n_lipid_types=n_lipid_types, seed=seed)
    patch_creator = PatchCreator(patch_grid=patch_grid, store=store)

    if pretrain_encoder:
        # Metric-train on an initial crop of patches from a short
        # continuum burn-in (self-supervised; no labels exist).
        burn = ContinuumSim(macro.config)
        flats = []
        for _ in range(4):
            burn.step(max(1, int(1.0 / burn.config.dt)))
            flats.extend(p.flat() for p in PatchCreator(patch_grid=patch_grid).create(burn.snapshot()))
        train_metric_encoder(encoder, np.stack(flats), epochs=60,
                             rng=np.random.default_rng(seed + 2))

    cg2cont = CGToContinuumFeedback(store, macro)
    aa2cg = AAToCGFeedback(store, forcefield)
    wm = WorkflowManager(
        macro=macro,
        encoder=encoder,
        forcefield=forcefield,
        store=store,
        adapter=adapter if adapter is not None else ThreadAdapter(max_workers=2),
        config=workflow or WorkflowConfig(beads_per_type=10, seed=seed),
        patch_creator=patch_creator,
        feedback_managers=[cg2cont, aa2cg],
    )
    return Application(
        wm=wm,
        macro=macro,
        encoder=encoder,
        forcefield=forcefield,
        store=store,
        cg2cont=cg2cont,
        aa2cg=aa2cg,
    )
