"""createsim: instantiate a CG particle system from a continuum patch.

§4.1 (2): "The createsim module transforms a patch from continuum
representation into a particle-based one. The insane tool is used to
create a CG representation of the membrane and proteins. Once
constructed, GROMACS is used to relax the membrane and proteins into a
more natural, equilibrated, state."

Our pipeline mirrors those three stages:

1. :func:`build_membrane` (the insane analogue) samples lipid bead
   positions from the patch's density fields — each field becomes a
   spatial Poisson intensity, so lipid enrichment around the protein
   survives the representation change;
2. protein beads are placed at the patch centre in the configurational
   state the patch recorded;
3. a short steepest-descent relaxation (the GROMACS-equilibration
   analogue) removes overlaps before the CG engine takes over.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sims.cg.engine import CGConfig, CGSim
from repro.sims.cg.forcefield import CGForceField, martini_like
from repro.sims.mapping.systems import CGSystem

__all__ = ["build_membrane", "createsim"]


def build_membrane(
    densities: np.ndarray,
    box: float,
    beads_per_type: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample lipid bead positions from density fields (insane analogue).

    For each lipid type, grid cells are drawn with probability
    proportional to the local density, and a uniform jitter places the
    bead inside its cell. Returns (positions (n,2), type_ids (n,)).
    """
    densities = np.asarray(densities, dtype=np.float64)
    if densities.ndim != 3:
        raise ValueError("densities must be (ntypes, m, m)")
    ntypes, m, _ = densities.shape
    cell = box / m
    positions = []
    type_ids = []
    for t in range(ntypes):
        weights = np.maximum(densities[t].ravel(), 0.0)
        total = weights.sum()
        if total <= 0:
            continue
        cells = rng.choice(m * m, size=beads_per_type, p=weights / total)
        ix, iy = np.divmod(cells, m)
        jitter = rng.random((beads_per_type, 2))
        pos = np.stack([(ix + jitter[:, 0]) * cell, (iy + jitter[:, 1]) * cell], axis=1)
        positions.append(pos)
        type_ids.append(np.full(beads_per_type, t))
    if not positions:
        raise ValueError("all density fields are empty")
    return np.vstack(positions), np.concatenate(type_ids)


def _place_protein(
    ff: CGForceField,
    box: float,
    with_raf: bool,
    n_beads: int,
    start_index: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Protein chain at the patch centre; RAF beads only if complexed."""
    center = np.array([box / 2, box / 2])
    spacing = 0.45
    positions = np.array([center + [spacing * k, 0.0] for k in range(n_beads)])
    ras_id = ff.index_of("RAS")
    raf_id = ff.index_of("RAF")
    if with_raf:
        half = n_beads // 2
        types = np.array([ras_id] * half + [raf_id] * (n_beads - half))
    else:
        types = np.full(n_beads, ras_id)
    bonds = np.array(
        [[start_index + k, start_index + k + 1, spacing] for k in range(n_beads - 1)]
    )
    return positions, types, bonds


def createsim(
    densities: np.ndarray,
    box: float,
    with_raf: bool,
    patch_id: str = "",
    forcefield: Optional[CGForceField] = None,
    beads_per_type: int = 80,
    n_protein_beads: int = 6,
    relax_steps: int = 30,
    seed: int = 0,
) -> CGSystem:
    """The full continuum→CG setup job.

    Produces an equilibrated :class:`CGSystem`. In the campaign this is
    a CPU-only setup job taking ~1.5 hours on 24 cores; the virtual-time
    campaign simulator accounts that cost, while this function does the
    actual (small-scale) work for real runs.
    """
    ff = forcefield or martini_like(n_lipid_types=densities.shape[0], seed=seed)
    if len(ff.lipid_type_names()) < densities.shape[0]:
        raise ValueError(
            f"force field has {len(ff.lipid_type_names())} lipid types, patch has "
            f"{densities.shape[0]} density fields"
        )
    rng = np.random.default_rng(seed)
    lipid_pos, lipid_types = build_membrane(densities, box, beads_per_type, rng)
    prot_pos, prot_types, bonds = _place_protein(
        ff, box, with_raf, n_protein_beads, start_index=lipid_pos.shape[0]
    )
    positions = np.vstack([lipid_pos, prot_pos])
    type_ids = np.concatenate([lipid_types, prot_types])
    # Relaxation: run the CG engine's dynamics at zero temperature, which
    # is steepest descent with the engine's own forces.
    cfg = CGConfig(box=box, n_lipids=lipid_pos.shape[0], temperature=0.0, seed=seed)
    sim = CGSim(positions, type_ids, ff, cfg, bonds=bonds)
    sim.step(relax_steps)
    return CGSystem(
        positions=sim.positions.copy(),
        type_ids=type_ids,
        bonds=bonds,
        box=box,
        source_patch=patch_id,
    )
