"""Registry-level tests: FSM edges, quotas, namespacing, fair shares.

These exercise the control plane *below* HTTP — the same registry the
daemon serves, driven directly. The HTTP surface is covered by
``test_server.py``; the doc-sync contract by ``test_api_doc.py``.
"""

import threading

import pytest

from repro.datastore.base import StoreError, StoreUnavailable
from repro.datastore.kvstore import KVStore
from repro.datastore.namespaced import (NamespacedStore,
                                        validate_namespace_segment)
from repro.sched.jobspec import JobSpec
from repro.sched.shares import FairShareAdapter, StrideScheduler
from repro.service.registry import (CampaignRegistry, CampaignSpec,
                                    CampaignState, Draining,
                                    IllegalTransition, QuotaExceeded,
                                    RegistryError, ServiceConfig,
                                    StoreDegraded, UnknownCampaign,
                                    _TRANSITIONS)

TINY = {"rounds": 1}


@pytest.fixture
def registry():
    reg = CampaignRegistry(KVStore(), config=ServiceConfig(pool_workers=2))
    yield reg
    reg.shutdown()


# ---------------------------------------------------------------------------
# the FSM edge table
# ---------------------------------------------------------------------------

class TestLifecycleFSM:
    def test_terminal_states_have_no_outgoing_edges(self):
        for state in CampaignState:
            if state.is_terminal:
                assert _TRANSITIONS[state] == set()
            else:
                assert _TRANSITIONS[state], f"{state} is a dead end"

    def test_every_state_can_reach_a_terminal(self):
        # BFS over the edge table: no live state may be inescapable.
        for start in CampaignState:
            seen, frontier = {start}, [start]
            while frontier:
                seen.update(nxt := set().union(
                    *(_TRANSITIONS[s] for s in frontier)) - seen)
                frontier = list(nxt)
            assert any(s.is_terminal for s in seen), f"{start} traps campaigns"

    def test_pause_resume_cancel_through_registry(self, registry):
        handle = registry.submit({"tenant": "alice", "rounds": 5000})
        # Submission starts the control thread; wait for RUNNING.
        deadline = threading.Event()
        for _ in range(200):
            if handle.state is CampaignState.RUNNING:
                break
            deadline.wait(0.01)
        handle.request("pause")
        assert handle.state is CampaignState.PAUSED
        with pytest.raises(IllegalTransition):
            handle.request("pause")  # already paused
        handle.request("resume")
        assert handle.state is CampaignState.RUNNING
        with pytest.raises(IllegalTransition):
            handle.request("resume")  # not paused
        handle.request("cancel")
        assert handle.wait(timeout=30.0) is CampaignState.CANCELLED

    def test_terminal_campaign_rejects_lifecycle_verbs(self, registry):
        handle = registry.submit({"tenant": "alice", **TINY})
        assert handle.wait(timeout=30.0) is CampaignState.DONE
        for verb in ("pause", "resume", "cancel"):
            with pytest.raises(IllegalTransition):
                handle.request(verb)

    def test_unknown_verb_is_a_bad_request(self, registry):
        handle = registry.submit({"tenant": "alice", **TINY})
        with pytest.raises(RegistryError, match="unknown lifecycle action"):
            handle.request("restart")
        handle.wait(timeout=30.0)


# ---------------------------------------------------------------------------
# submission validation and admission control
# ---------------------------------------------------------------------------

class TestSubmission:
    @pytest.mark.parametrize("body", [
        {},                                        # tenant missing
        {"tenant": "Bad Tenant!"},                 # illegal characters
        {"tenant": "alice", "rounds": 0},          # below minimum
        {"tenant": "alice", "rounds": "many"},     # wrong type
        {"tenant": "alice", "surprise": 1},        # unknown field
        {"tenant": "alice", "advance_us": -1.0},   # non-positive
        {"tenant": "alice", "workflow": {"nope": 1}},  # unknown wf key
        {"tenant": "alice", "name": "x" * 200},    # name too long
    ])
    def test_bad_requests_are_rejected(self, body):
        with pytest.raises(RegistryError):
            CampaignSpec.from_request(body, ServiceConfig())

    def test_rounds_cap_comes_from_config(self):
        cfg = ServiceConfig(max_rounds=7)
        with pytest.raises(RegistryError, match=r"\[1, 7\]"):
            CampaignSpec.from_request({"tenant": "alice", "rounds": 8}, cfg)

    def test_defaults_are_merged(self):
        spec = CampaignSpec.from_request({"tenant": "alice"}, ServiceConfig())
        assert spec.rounds == ServiceConfig().default_rounds
        assert spec.workflow.beads_per_type == 6

    def test_per_tenant_quota(self):
        cfg = ServiceConfig(max_campaigns_per_tenant=1, pool_workers=2)
        reg = CampaignRegistry(KVStore(), config=cfg)
        try:
            reg.submit({"tenant": "alice", "rounds": 5000})
            with pytest.raises(QuotaExceeded):
                reg.submit({"tenant": "alice", "rounds": 5000})
            # A different tenant is not affected by alice's quota.
            reg.submit({"tenant": "bob", "rounds": 5000})
        finally:
            reg.shutdown()

    def test_total_quota(self):
        cfg = ServiceConfig(max_campaigns_total=1, pool_workers=2)
        reg = CampaignRegistry(KVStore(), config=cfg)
        try:
            reg.submit({"tenant": "alice", "rounds": 5000})
            with pytest.raises(QuotaExceeded):
                reg.submit({"tenant": "bob", "rounds": 5000})
        finally:
            reg.shutdown()

    def test_terminal_campaigns_do_not_count_against_quota(self, registry):
        cfg = ServiceConfig(max_campaigns_per_tenant=1, pool_workers=2)
        reg = CampaignRegistry(KVStore(), config=cfg)
        try:
            first = reg.submit({"tenant": "alice", **TINY})
            assert first.wait(timeout=30.0) is CampaignState.DONE
            reg.submit({"tenant": "alice", **TINY}).wait(timeout=30.0)
        finally:
            reg.shutdown()

    def test_draining_rejects_submissions(self, registry):
        registry.drain()
        assert not registry.ready()
        with pytest.raises(Draining):
            registry.submit({"tenant": "alice", **TINY})


# ---------------------------------------------------------------------------
# lookup, deletion, tenancy reporting
# ---------------------------------------------------------------------------

class TestRegistryBookkeeping:
    def test_get_unknown_campaign(self, registry):
        with pytest.raises(UnknownCampaign):
            registry.get("c999999")

    def test_delete_requires_terminal_state(self, registry):
        handle = registry.submit({"tenant": "alice", "rounds": 5000})
        with pytest.raises(IllegalTransition):
            registry.delete(handle.campaign_id)
        handle.request("cancel")
        handle.wait(timeout=30.0)
        handle.join(timeout=30.0)
        registry.delete(handle.campaign_id)
        with pytest.raises(UnknownCampaign):
            registry.get(handle.campaign_id)

    def test_delete_purges_the_campaign_keyspace(self, registry):
        handle = registry.submit({"tenant": "alice", **TINY})
        handle.wait(timeout=30.0)
        handle.join(timeout=30.0)
        prefix = handle.store_view.prefix
        assert registry.store.keys(prefix), "campaign wrote nothing?"
        result = registry.delete(handle.campaign_id)
        assert result["purged_keys"] > 0
        assert registry.store.keys(prefix) == []

    def test_delete_with_store_down_is_retryable(self):
        """A purge that cannot scan (replica window down) must map to a
        retryable 503 and leave the campaign deletable, not half-forget
        it with its keyspace still on the shards."""

        class FlakyStore(KVStore):
            down = False

            def keys(self, prefix=""):
                if self.down:
                    raise StoreUnavailable("replica window fully down")
                return super().keys(prefix)

        store = FlakyStore()
        reg = CampaignRegistry(store, config=ServiceConfig(pool_workers=2))
        try:
            handle = reg.submit({"tenant": "alice", **TINY})
            handle.wait(timeout=30.0)
            handle.join(timeout=30.0)
            prefix = handle.store_view.prefix

            store.down = True
            with pytest.raises(StoreDegraded) as err:
                reg.delete(handle.campaign_id)
            assert err.value.http_status == 503
            assert "retry" in str(err.value)
            # Not half-deleted: still visible, keyspace untouched.
            assert reg.get(handle.campaign_id) is handle

            store.down = False  # shard healed: the retry succeeds
            result = reg.delete(handle.campaign_id)
            assert result["purged_keys"] > 0
            assert store.keys(prefix) == []
            with pytest.raises(UnknownCampaign):
                reg.get(handle.campaign_id)
        finally:
            reg.shutdown()

    def test_tenants_report_shows_usage_and_quota(self, registry):
        a = registry.submit({"tenant": "alice", **TINY})
        b = registry.submit({"tenant": "bob", **TINY})
        a.wait(timeout=30.0)
        b.wait(timeout=30.0)
        rows = {r["tenant"]: r for r in registry.tenants()}
        assert rows["alice"]["campaigns"].get("done") == 1
        assert rows["alice"]["quota"] == registry.config.max_campaigns_per_tenant
        assert "share" in rows["alice"]

    def test_health_reports_states_and_pool(self, registry):
        handle = registry.submit({"tenant": "alice", **TINY})
        handle.wait(timeout=30.0)
        health = registry.health()
        assert health["status"] == "ok"
        assert health["campaigns"].get("done") == 1
        assert health["store"]["ok"] is True
        assert "alice" in health["pool"]


# ---------------------------------------------------------------------------
# namespacing on the shared store
# ---------------------------------------------------------------------------

class TestNamespacing:
    def test_segment_validation(self):
        assert validate_namespace_segment("alice-1", "tenant") == "alice-1"
        for bad in ("", "Has Space", "UPPER", "a/b", "x" * 65, "..", "-lead"):
            with pytest.raises(StoreError):
                validate_namespace_segment(bad, "tenant")

    def test_views_are_disjoint(self):
        base = KVStore()
        a = NamespacedStore(base, "alice", "c000001")
        b = NamespacedStore(base, "bob", "c000001")
        a.write("frame", b"A")
        b.write("frame", b"B")
        assert a.read("frame") == b"A"
        assert b.read("frame") == b"B"
        assert sorted(base.keys("")) == [
            "tenants/alice/c000001/frame", "tenants/bob/c000001/frame"]
        assert a.keys("") == ["frame"]

    def test_batched_paths_stay_namespaced(self):
        base = KVStore()
        view = NamespacedStore(base, "alice", "c000001")
        view.write_many({"x/1": b"1", "x/2": b"2"})
        assert view.read_many(["x/1", "x/2"]) == {"x/1": b"1", "x/2": b"2"}
        assert view.read_present(["x/1", "x/9"]) == {"x/1": b"1"}
        assert view.exists("x/1") and not view.exists("x/9")
        assert sorted(view.keys("x/")) == ["x/1", "x/2"]
        assert view.nkeys() == 2
        view.delete_many(["x/1", "x/2"])
        assert base.keys("") == []

    def test_purge_only_touches_own_namespace(self):
        base = KVStore()
        mine = NamespacedStore(base, "alice", "c000001")
        other = NamespacedStore(base, "alice", "c000002")
        mine.write("k", b"m")
        other.write("k", b"o")
        assert mine.purge() == 1
        assert other.read("k") == b"o"


# ---------------------------------------------------------------------------
# fair shares
# ---------------------------------------------------------------------------

class TestFairShares:
    def test_stride_ratio(self):
        sched = StrideScheduler()
        sched.set_weight("heavy", 3.0)
        sched.set_weight("light", 1.0)
        picks = [sched.pick({"heavy": 1, "light": 1}) for _ in range(400)]
        heavy = picks.count("heavy")
        # 3:1 weights → heavy gets ~300 of 400 picks (integer strides
        # make this nearly exact; allow slack for rounding).
        assert 280 <= heavy <= 320

    def test_new_tenant_joins_at_current_pass(self):
        sched = StrideScheduler()
        for _ in range(50):
            sched.pick({"old": 1})
        for _ in range(10):
            sched.pick({"old": 1, "new": 1})
        # The newcomer must not get a monopoly to "catch up" on history.
        passes = sched.passes()
        assert passes["new"] <= passes["old"] * 2

    def test_wait_tenant_ignores_other_tenants(self):
        pool = FairShareAdapter(max_workers=2)
        release = threading.Event()
        done = []
        try:
            pool.view("slow").submit(JobSpec(name="s"),
                                     lambda: release.wait(10))
            pool.view("fast").submit(JobSpec(name="f"),
                                     lambda: done.append("f"))
            pool.wait_tenant("fast", timeout=10.0)
            assert done == ["f"]  # returned without waiting on "slow"
        finally:
            release.set()
            pool.shutdown()

    def test_share_stats_account_per_tenant(self):
        pool = FairShareAdapter(max_workers=2, shares={"alice": 2.0})
        try:
            view = pool.view("alice")
            for i in range(3):
                view.submit(JobSpec(name=f"j{i}"), lambda: None)
            pool.wait_tenant("alice", timeout=10.0)
            stats = pool.share_stats()["alice"]
            assert stats["weight"] == 2.0
            assert stats["completed"] == 3
            assert stats["queued"] == 0
        finally:
            pool.shutdown()
