"""End-to-end tracing: WM rounds, cross-thread ancestry, fault events."""

import numpy as np
import pytest

from repro import trace
from repro.app.builder import build_application
from repro.core.telemetry import collect_telemetry, render_report
from repro.core.wm import WorkflowConfig
from repro.datastore.base import StoreUnavailable
from repro.datastore.netkv import NetKVServer, NetKVStore, TransportConfig
from repro.util.faults import NetworkFaultInjector


@pytest.fixture(autouse=True)
def reset_global_tracer():
    trace.disable()
    yield
    trace.disable()


@pytest.fixture(scope="module")
def traced_run():
    """Two traced workflow rounds; yields (rows, telemetry report)."""
    trace.disable()
    tracer = trace.enable()
    app = build_application(
        store_url="kv://2",
        workflow=WorkflowConfig(beads_per_type=8, cg_chunks_per_job=2,
                                cg_steps_per_chunk=10, aa_chunks_per_job=1,
                                aa_steps_per_chunk=10, seed=0),
        seed=0,
    )
    app.run(nrounds=2)
    report = collect_telemetry(app.wm)
    rows = tracer.rows()
    trace.disable()
    return rows, report


class TestWorkflowTrace:
    def test_stage_set_covers_the_pipeline(self, traced_run):
        rows, _ = traced_run
        stages = {r["stage"] for r in rows}
        assert {"wm", "select", "schedule", "store", "feedback"} <= stages

    def test_rounds_are_root_spans(self, traced_run):
        rows, _ = traced_run
        rounds = [r for r in rows if r["name"] == "wm.round"]
        assert len(rounds) == 2
        assert all(r["parent"] is None for r in rounds)
        assert sorted(r["attrs"]["round"] for r in rounds) == [0, 1]

    def test_worker_thread_store_ops_parent_into_job_spans(self, traced_run):
        """trace.wrap carries context into the WM's thread-pool jobs."""
        rows, _ = traced_run
        by_id = {r["span"]: r for r in rows}
        sim_spans = [r for r in rows
                     if r["name"] in ("wm.cg_sim", "wm.aa_sim", "wm.createsim")]
        assert sim_spans
        # Job bodies run on worker threads yet still have a parent chain.
        parented = [r for r in sim_spans if r["parent"] is not None]
        assert parented
        # And store writes issued inside a job parent to that job's span.
        cg_ids = {r["span"] for r in rows if r["name"] == "wm.cg_sim"}
        store_children = [r for r in rows
                          if r["stage"] == "store" and r["parent"] in cg_ids]
        assert store_children
        for child in store_children:
            assert by_id[child["parent"]]["thread"] == child["thread"]

    def test_selection_spans_nest_under_wm_select(self, traced_run):
        rows, _ = traced_run
        wm_select = {r["span"] for r in rows if r["name"] == "wm.select"}
        inner = [r for r in rows if r["stage"] == "select"]
        assert inner
        assert any(r["parent"] in wm_select for r in inner)

    def test_feedback_phases_nest_under_iteration(self, traced_run):
        rows, _ = traced_run
        iters = {r["span"] for r in rows if r["name"] == "feedback.iteration"}
        phases = [r for r in rows if r["name"].startswith("feedback.")
                  and r["name"] != "feedback.iteration"]
        assert phases
        assert all(r["parent"] in iters for r in phases)

    def test_telemetry_carries_trace_summary(self, traced_run):
        _, report = traced_run
        assert report.trace["spans"] > 0
        assert report.trace["dropped"] == 0
        assert "store" in report.trace["stages"]
        assert "trace:" in render_report(report)

    def test_breakdown_renders_from_live_rows(self, traced_run):
        rows, _ = traced_run
        text = trace.render_breakdown(rows)
        assert "critical path" in text
        assert "wm.round" in text


class TestTelemetryWithoutTracing:
    def test_trace_section_empty_when_disabled(self):
        app = build_application(
            store_url="kv://2",
            workflow=WorkflowConfig(beads_per_type=8, cg_chunks_per_job=1,
                                    cg_steps_per_chunk=5, aa_chunks_per_job=1,
                                    aa_steps_per_chunk=5, seed=0),
            seed=0,
        )
        app.run(nrounds=1)
        report = collect_telemetry(app.wm)
        assert report.trace == {}
        assert "trace:" not in render_report(report)


class TestFaultInjectionTrace:
    def test_injected_faults_become_retry_events(self):
        """§ tentpole: a degraded-network run shows retries in the trace."""
        tracer = trace.enable()
        injector = NetworkFaultInjector(close=0.4, rng=np.random.default_rng(7))
        server = NetKVServer(fault_injector=injector).start()
        try:
            store = NetKVStore.connect(
                [server.address],
                config=TransportConfig(retries=8, backoff_base=0.001,
                                       backoff_max=0.01, op_timeout=2.0),
            )
            for i in range(20):
                store.write(f"k/{i:02d}", b"payload")
                assert store.read(f"k/{i:02d}") == b"payload"
            store.close()
        finally:
            server.stop()
        rows = tracer.rows()
        assert injector.injected["close"] > 0  # faults actually fired
        counts = trace.event_counts(rows)
        assert counts.get("retry", 0) > 0
        # Retry events are attached to the store op that paid for them.
        retried = [r for r in rows if any(e["name"] == "retry" for e in r["events"])]
        assert retried
        assert all(r["stage"] == "store" for r in retried)
        for r in retried:
            ev = next(e for e in r["events"] if e["name"] == "retry")
            assert ev["attrs"]["kind"] in {"timeout", "protocol", "connection"}
            assert ev["attrs"]["op"] in {"SET", "GET"}

    def test_exhausted_budget_annotates_the_failing_span(self):
        tracer = trace.enable()
        server = NetKVServer().start()
        address = server.address
        server.stop()  # dead server: every attempt fails
        store = NetKVStore.connect(
            [address],
            config=TransportConfig(retries=1, backoff_base=0.0,
                                   backoff_max=0.0, connect_timeout=0.2,
                                   op_timeout=0.2),
        )
        with pytest.raises(StoreUnavailable):
            store.read("missing")
        store.close()
        counts = trace.event_counts(tracer.rows())
        assert counts.get("exhausted", 0) == 1
        (row,) = [r for r in tracer.rows() if r["name"] == "store.read"]
        assert row["attrs"]["error"] == "StoreUnavailable"

    def test_server_side_handle_spans_record_commands(self):
        tracer = trace.enable()
        server = NetKVServer().start()
        try:
            store = NetKVStore.connect([server.address])
            store.write("a", b"1")
            store.read("a")
            store.close()
        finally:
            server.stop()
        handles = [r for r in tracer.rows() if r["name"] == "netkv.handle"]
        cmds = {r["attrs"].get("cmd") for r in handles}
        assert {"SET", "GET"} <= cmds
