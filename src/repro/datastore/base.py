"""The abstract data interface every backend implements.

Keys are slash-separated strings (``"rdf/frame-000123"``); the segment
before the final component acts as a *namespace*. Feedback "tags"
processed data by moving it out of its namespace (paper §4.4 Task 4) —
:meth:`DataStore.move` is that operation, implemented natively by every
backend (file rename / key rename / archive tombstone + re-append).
"""

from __future__ import annotations

import abc
import functools
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro import trace
from repro.datastore import serial
from repro.datastore.stats import IOStats

__all__ = [
    "DataStore", "StoreError", "StoreUnavailable", "KeyNotFound",
    "open_store", "validate_key",
]


class StoreError(RuntimeError):
    """Base error for data-interface failures."""


class StoreUnavailable(StoreError):
    """The store could not be reached within its retry budget.

    Raised by networked backends once timeouts, reconnects, and backoff
    are exhausted. Distinct from plain :class:`StoreError` so callers
    (feedback managers, tiered stores) can degrade gracefully on an
    outage while still treating protocol/application errors as bugs.
    """


class KeyNotFound(StoreError, KeyError):
    """Requested key does not exist in the store."""


def validate_key(key: str) -> str:
    """Reject keys that could escape a namespace or collide with internals.

    Returns the key unchanged when valid so call sites can chain it.
    """
    if not key or not isinstance(key, str):
        raise StoreError(f"invalid key: {key!r}")
    if key.startswith("/") or key.endswith("/"):
        raise StoreError(f"key may not start or end with '/': {key!r}")
    parts = key.split("/")
    if any(p in ("", ".", "..") for p in parts):
        raise StoreError(f"key contains empty or relative segments: {key!r}")
    if any("\x00" in p for p in parts):
        raise StoreError(f"key contains NUL: {key!r}")
    return key


def _instrument(op: str, fn):
    """Wrap a primitive so every call lands in the store's IOStats.

    The same wrapper opens a ``store.<op>`` trace span around the call
    (``store.scan`` for key listings) when tracing is enabled, carrying
    the key and payload size — the store leg of the end-to-end latency
    attribution OBSERVABILITY.md describes.
    """
    span_name = "store." + ("scan" if op == "keys" else op)

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        with trace.span(span_name) as sp:
            if sp and args:
                sp.set(key=args[0])
            result = fn(self, *args, **kwargs)
            if op == "write":
                nbytes = len(args[1]) if len(args) > 1 else 0
                self.stats.note("write", nbytes)
                if sp:
                    sp.set(bytes=nbytes)
            elif op == "read":
                self.stats.note("read", len(result))
                if sp:
                    sp.set(bytes=len(result))
            elif op == "keys":
                self.stats.note("scan")
            else:
                self.stats.note(op)
        return result

    wrapper._io_instrumented = True
    return wrapper


class DataStore(abc.ABC):
    """Abstract byte-stream store with namespace semantics.

    Subclasses implement the five primitive operations; the typed
    convenience methods (`*_npz`, `*_json`) are shared, which is what
    makes payloads portable across backends. Every concrete backend is
    automatically instrumented: byte/operation counts accumulate in
    :attr:`stats` (see :class:`~repro.datastore.stats.IOStats`).
    """

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        for name, op in (("write", "write"), ("read", "read"),
                         ("delete", "delete"), ("move", "move"), ("keys", "keys")):
            fn = cls.__dict__.get(name)
            if fn is not None and not getattr(fn, "_io_instrumented", False):
                setattr(cls, name, _instrument(op, fn))

    @property
    def stats(self) -> IOStats:
        """I/O counters for this store instance (created lazily)."""
        existing = getattr(self, "_io_stats", None)
        if existing is None:
            existing = IOStats()
            self._io_stats = existing
        return existing

    # --- primitives -----------------------------------------------------

    @abc.abstractmethod
    def write(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key``, overwriting any previous value."""

    @abc.abstractmethod
    def read(self, key: str) -> bytes:
        """Return the bytes stored under ``key``; raise :class:`KeyNotFound`."""

    @abc.abstractmethod
    def delete(self, key: str) -> None:
        """Remove ``key``; raise :class:`KeyNotFound` if absent."""

    @abc.abstractmethod
    def keys(self, prefix: str = "") -> List[str]:
        """All live keys starting with ``prefix``, sorted."""

    @abc.abstractmethod
    def move(self, src: str, dst: str) -> None:
        """Atomically rename ``src`` to ``dst`` (namespace tagging)."""

    # --- defaults built on the primitives --------------------------------

    def exists(self, key: str) -> bool:
        """Whether ``key`` currently holds a value."""
        try:
            self.read(key)
            return True
        except KeyNotFound:
            return False

    def read_many(self, keys: Iterable[str]) -> Dict[str, bytes]:
        """Read several keys; missing keys raise like :meth:`read`."""
        return {k: self.read(k) for k in keys}

    def read_present(self, keys: Iterable[str]) -> Dict[str, bytes]:
        """Read several keys, silently skipping those that are missing.

        Feedback collectors race concurrent taggers, so a key listed a
        moment ago may legitimately be gone; batching backends override
        this with one pipelined round trip per shard.
        """
        out: Dict[str, bytes] = {}
        for k in keys:
            try:
                out[k] = self.read(k)
            except KeyNotFound:
                pass
        return out

    def write_many(self, items: Union[Mapping[str, bytes],
                                      Iterable[Tuple[str, bytes]]]) -> None:
        """Write several key/value pairs (backends may batch)."""
        pairs = items.items() if hasattr(items, "items") else items
        for k, v in pairs:
            self.write(k, v)

    def delete_many(self, keys: Iterable[str]) -> int:
        """Delete several keys; returns the number actually removed."""
        n = 0
        for k in keys:
            try:
                self.delete(k)
                n += 1
            except KeyNotFound:
                pass
        return n

    def close(self) -> None:
        """Flush and release resources (default: nothing to do)."""

    def __enter__(self) -> "DataStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # --- typed convenience ------------------------------------------------

    def write_npz(self, key: str, arrays: Mapping[str, np.ndarray]) -> None:
        """Store a dict of NumPy arrays as one payload."""
        self.write(key, serial.npz_to_bytes(arrays))

    def read_npz(self, key: str) -> Dict[str, np.ndarray]:
        """Read back a payload written by :meth:`write_npz`."""
        return serial.bytes_to_npz(self.read(key))

    def write_json(self, key: str, obj: Any) -> None:
        """Store a JSON-serializable object."""
        self.write(key, serial.json_to_bytes(obj))

    def read_json(self, key: str) -> Any:
        """Read back a payload written by :meth:`write_json`."""
        return serial.bytes_to_json(self.read(key))


def open_store(url: str, **kwargs: Any) -> DataStore:
    """Open a backend from a URL — the paper's "single configuration switch".

    Supported schemes::

        fs://<directory>          filesystem backend
        taridx://<directory>      indexed-tar archive backend
        kv://[nservers]           in-memory KV cluster (default 1 server)
        netkv://host:port[,...][?replication=N&route_refresh=S]
                                  networked KV cluster (live servers);
                                  ``replication`` places every hash slot
                                  on N consecutive shards for failover,
                                  ``route_refresh`` is how often (s) the
                                  client polls the shared routing map
                                  for migrations done by other processes

    Extra keyword arguments are forwarded to the backend constructor.
    """
    from repro.datastore.fsstore import FSStore
    from repro.datastore.kvstore import KVCluster, KVStore
    from repro.datastore.taridx import TaridxStore

    scheme, sep, rest = url.partition("://")
    if not sep:
        raise StoreError(f"store URL must look like 'scheme://target': {url!r}")
    if scheme == "fs":
        return FSStore(rest, **kwargs)
    if scheme == "taridx":
        return TaridxStore(rest, **kwargs)
    if scheme == "kv":
        nservers = int(rest) if rest else 1
        return KVStore(KVCluster(nservers=nservers), **kwargs)
    if scheme == "netkv":
        from repro.datastore.netkv import NetKVStore

        rest, qsep, query = rest.partition("?")
        if qsep:
            for pair in filter(None, query.split("&")):
                name, eq, value = pair.partition("=")
                if name == "replication" and eq and value.isdigit():
                    kwargs.setdefault("replication", int(value))
                elif name == "route_refresh" and eq:
                    try:
                        kwargs.setdefault("route_refresh", float(value))
                    except ValueError:
                        raise StoreError(
                            f"bad netkv route_refresh value {value!r}")
                else:
                    raise StoreError(f"unknown netkv URL option {pair!r}")
        addresses = []
        for part in filter(None, (p.strip() for p in rest.split(","))):
            host, sep2, port = part.rpartition(":")
            if not sep2 or not port.isdigit():
                raise StoreError(f"netkv address must be host:port, got {part!r}")
            addresses.append((host, int(port)))
        if not addresses:
            raise StoreError(f"netkv URL needs at least one host:port: {url!r}")
        return NetKVStore.connect(addresses, **kwargs)
    raise StoreError(f"unknown store scheme {scheme!r} in {url!r}")
