"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and both
prints the series and appends it to ``benchmarks/results/<name>.txt``
so the numbers survive pytest's output capture. EXPERIMENTS.md records
the paper-vs-measured comparison for each.
"""

from __future__ import annotations

import os
from typing import Iterable

import pytest

from repro.core.campaign import CampaignConfig, CampaignSimulator

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, lines: Iterable[str]) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    print(f"\n[{name}]\n{text}")
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")


@pytest.fixture(scope="session")
def campaign_result():
    """The full paper-ledger campaign, simulated once per bench session.

    Takes about a minute of wall time for 600,600 virtual node-hours;
    Table 1 and Figs. 3-5 all read from this one run.
    """
    sim = CampaignSimulator(CampaignConfig(seed=2021))
    return sim.run()
