"""The resource matcher (R) and its policies.

§5.2: "R essentially traverses the resource graph in its entirety for
each job, particularly in the beginning when there are many vacant
resources, creating 'too many choices'. We solved this problem by
introducing a first-match policy that assigns the first matching
resource set to a job greedily." The two paper policies implement
exactly that trade-off, and :class:`MatchStats` counts the vertices each
one touches so benchmarks can report the speed-up both as visit counts
and as wall time.

Beyond the paper's pair, two richer placement policies ride on the
greedy scan (PAPERS.md: "Three Practical Workflow Schedulers",
"Co-scheduling Ensembles of In Situ Workflows"):

- :attr:`MatchPolicy.BACKFILL` — greedy matching plus window-bounded
  placement of later jobs past a blocked queue head (the queue manager
  interprets this policy by enabling its ``backfill_window``).
- :attr:`MatchPolicy.GANG` — all-or-nothing co-placement of a named
  ensemble of specs via :meth:`Matcher.match_gang`, with reservation and
  rollback on partial failure.

All policies run on the *partitioned* scan paths by default: the graph
keeps per-partition free-resource watermarks, and partitions whose
watermark cannot satisfy the request are skipped at the cost of one
summary check each (:attr:`MatchStats.partitions_skipped`). Pass
``partitioned=False`` to get the flat full-array scans — the oracle the
property suite compares against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro import trace
from repro.sched.jobspec import JobSpec
from repro.sched.resources import Allocation, Node, ResourceGraph

__all__ = ["MatchPolicy", "MatchStats", "Matcher"]


class MatchPolicy(enum.Enum):
    """How R picks among feasible placements."""

    LOW_ID_FIRST = "low-id-first"
    """Exhaustive: enumerate every feasible node (ranking the whole
    subtree of each), then take the lowest resource ids — the policy the
    campaign ran with, whose full-graph traversal became the 4000-node
    bottleneck."""

    FIRST_MATCH = "first-match"
    """Greedy: take the first feasible node(s), scanning from a rotating
    start position; stops as soon as the request is satisfied — the fix
    that yielded the paper's 670× matcher speed-up."""

    BACKFILL = "backfill"
    """Greedy first-match scanning, plus the queue manager lets up to
    ``backfill_window`` later jobs start past a blocked head (the head
    keeps its queue position)."""

    GANG = "gang"
    """Greedy first-match scanning, plus ensembles of specs sharing a
    ``gang_id`` place all-or-nothing (reservation + rollback)."""


#: Policies whose node scan is the greedy rotating-cursor first-match walk.
GREEDY_POLICIES = (MatchPolicy.FIRST_MATCH, MatchPolicy.BACKFILL, MatchPolicy.GANG)


@dataclass
class MatchStats:
    """Traversal-cost accounting across match calls."""

    calls: int = 0
    matched: int = 0
    failed: int = 0
    vertices_visited: int = 0
    partitions_skipped: int = 0
    """Partitions dismissed by a watermark check alone (each also charges
    one visited vertex — the summary node)."""
    gang_calls: int = 0
    gang_matched: int = 0
    gang_rollbacks: int = 0
    preempt_calls: int = 0
    preempt_evictions: int = 0

    def visits_per_call(self) -> float:
        return self.vertices_visited / self.calls if self.calls else 0.0


class Matcher:
    """Maps a :class:`JobSpec` to an :class:`Allocation` on a graph.

    The matcher does not claim resources itself; :meth:`match` returns a
    placement proposal and the caller (the queue manager) claims it.
    That split mirrors Flux's Q/R separation and lets the queue model
    synchronous vs asynchronous communication between the two.

    ``partitioned`` selects the scan implementation: watermark-skipping
    partitioned scans (default, the 40k-node fast path) or the flat
    full-array scans (the reference oracle). Both return identical
    placements for identical call sequences; only the traversal cost
    differs.
    """

    def __init__(self, graph: ResourceGraph, policy: MatchPolicy = MatchPolicy.LOW_ID_FIRST,
                 partitioned: bool = True) -> None:
        self.graph = graph
        self.policy = policy
        self.partitioned = partitioned
        self.stats = MatchStats()
        self._rr_cursor = 0  # first-match rotating start

    # --- public API ------------------------------------------------------

    def match(self, spec: JobSpec) -> Optional[Allocation]:
        """Propose a placement, or None if the job cannot run now.

        This is the scheduler's hot loop (§5.2's 670× result is about
        exactly this call), so tracing is guarded on
        :func:`repro.trace.enabled` — the disabled cost is one global
        check, held under 5% of the match cost by
        ``benchmarks/test_ext_trace_overhead.py``.
        """
        if not trace.enabled():
            return self._match(spec)
        visited_before = self.stats.vertices_visited
        skipped_before = self.stats.partitions_skipped
        with trace.span("schedule.match") as sp:
            alloc = self._match(spec)
            sp.set(job=spec.name, policy=self.policy.value,
                   matched=alloc is not None,
                   vertices=self.stats.vertices_visited - visited_before,
                   partitions_skipped=self.stats.partitions_skipped - skipped_before)
        return alloc

    def match_gang(self, specs: Sequence[JobSpec]) -> Optional[List[Allocation]]:
        """All-or-nothing co-placement of an ensemble of specs.

        Members are placed (and claimed) one at a time — the running
        prefix is the *reservation*. If any member cannot place, every
        reserved allocation is released and the rotating cursor is
        restored, so a failed gang leaves the graph and the matcher
        state untouched (rollback). Returns one allocation per spec, in
        order, or None.
        """
        self.stats.gang_calls += 1
        if not specs:
            return []
        if not trace.enabled():
            return self._match_gang(specs)
        with trace.span("schedule.gang") as sp:
            allocs = self._match_gang(specs)
            sp.set(size=len(specs), placed=allocs is not None)
        return allocs

    def _match_gang(self, specs: Sequence[JobSpec]) -> Optional[List[Allocation]]:
        cursor_before = self._rr_cursor
        reserved: List[Allocation] = []
        for spec in specs:
            alloc = self._match(spec)
            if alloc is None:
                for held in reversed(reserved):
                    self.graph.release(held)
                self._rr_cursor = cursor_before
                self.stats.gang_rollbacks += 1
                return None
            reserved.append(alloc)
        self.stats.gang_matched += 1
        return reserved

    def preempt(
        self,
        spec: JobSpec,
        victims: Sequence[Tuple[int, Any, Allocation]],
    ) -> Optional[Tuple[Allocation, List[Any]]]:
        """Evict lowest-priority allocations until ``spec`` fits.

        ``victims`` is ``(priority, key, allocation)`` for every running
        job the caller is willing to sacrifice; only victims with
        priority *strictly below* ``spec.priority`` are eligible, and
        they are released lowest-priority-first (ties in the given
        order) until a match succeeds. On success returns the new
        allocation plus the keys of the evicted victims — the queue
        requeues those jobs. If evicting every eligible victim still
        does not make room, every released allocation is re-claimed and
        the cursor restored: preemption is all-or-nothing too.
        """
        self.stats.preempt_calls += 1
        eligible = sorted(
            (v for v in victims if v[0] < spec.priority), key=lambda v: v[0]
        )
        cursor_before = self._rr_cursor
        evicted: List[Tuple[Any, Allocation]] = []
        for _prio, key, alloc in eligible:
            self.graph.release(alloc)
            evicted.append((key, alloc))
            placement = self._match(spec)
            if placement is not None:
                self.stats.preempt_evictions += len(evicted)
                return placement, [k for k, _ in evicted]
        for _key, alloc in reversed(evicted):
            self.graph.claim(alloc.items)
        self._rr_cursor = cursor_before
        return None

    def _match(self, spec: JobSpec) -> Optional[Allocation]:
        self.stats.calls += 1
        if spec.exclusive:
            placement = self._match_exclusive(spec)
        elif spec.nnodes > 1:
            placement = self._match_multi_node(spec)
        else:
            placement = self._match_single_node(spec)
        if placement is None:
            self.stats.failed += 1
            return None
        self.stats.matched += 1
        return self.graph.claim(placement)

    def release(self, alloc: Allocation) -> None:
        self.graph.release(alloc)

    # --- policy internals ----------------------------------------------------

    def _pick_cost(self, node: Node, ncores: int, ngpus: int) -> None:
        """Claiming enumerates only the chosen resources."""
        self.stats.vertices_visited += ncores + ngpus

    def _candidate_nodes(self, spec: JobSpec) -> List[Node]:
        """Feasible nodes under the current policy's traversal rule.

        Feasibility is computed vectorized for speed, but the visit
        counter charges exactly what the equivalent graph walk would:
        the exhaustive policy inspects every node vertex it cannot
        watermark-skip and ranks the full subtree of every feasible one
        ("too many choices"); the greedy policies inspect node vertices
        only up to their last hit. A watermark-skipped partition charges
        one vertex (the summary check), never its members.
        """
        graph = self.graph
        subtree = graph.node_subtree_size
        if self.policy is MatchPolicy.LOW_ID_FIRST:
            if self.partitioned:
                ids, examined, skipped = graph.feasible_ids_partitioned(
                    spec.ncores, spec.ngpus, spec.exclusive
                )
                self.stats.vertices_visited += examined + skipped
                self.stats.partitions_skipped += skipped
            else:
                ids = graph.feasible_ids(spec.ncores, spec.ngpus, spec.exclusive)
                self.stats.vertices_visited += len(graph.nodes)  # every node checked
            self.stats.vertices_visited += len(ids) * (subtree - 1)  # rank feasible subtrees
            return [graph.nodes[i] for i in ids]
        if self.partitioned:
            ids, scanned, skipped = graph.first_feasible_partitioned(
                self._rr_cursor, spec.nnodes, spec.ncores, spec.ngpus, spec.exclusive
            )
            self.stats.vertices_visited += scanned + skipped
            self.stats.partitions_skipped += skipped
        else:
            ids, scanned = graph.first_feasible(
                self._rr_cursor, spec.nnodes, spec.ncores, spec.ngpus, spec.exclusive
            )
            self.stats.vertices_visited += scanned
        if len(ids) >= spec.nnodes:
            # Advance only when the request can actually place. A partial
            # multi-node hit must not rotate the cursor, or a string of
            # failed attempts walks it past the few feasible nodes and
            # the next feasible job starts scanning from the wrong spot.
            self._rr_cursor = (ids[-1] + 1) % len(graph.nodes)
        return [graph.nodes[i] for i in ids]

    def _match_single_node(self, spec: JobSpec) -> Optional[List[Tuple[int, List[int], List[int]]]]:
        candidates = self._candidate_nodes(spec)
        if not candidates:
            return None
        node = candidates[0]
        cores, gpus = node.pick(spec.ncores, spec.ngpus)
        self._pick_cost(node, len(cores), len(gpus))
        return [(node.node_id, cores, gpus)]

    def _match_multi_node(self, spec: JobSpec) -> Optional[List[Tuple[int, List[int], List[int]]]]:
        candidates = self._candidate_nodes(spec)
        if len(candidates) < spec.nnodes:
            return None
        placement = []
        for node in candidates[: spec.nnodes]:
            cores, gpus = node.pick(spec.ncores, spec.ngpus)
            self._pick_cost(node, len(cores), len(gpus))
            placement.append((node.node_id, cores, gpus))
        return placement

    def _match_exclusive(self, spec: JobSpec) -> Optional[List[Tuple[int, List[int], List[int]]]]:
        candidates = self._candidate_nodes(spec)
        if len(candidates) < spec.nnodes:
            return None
        placement = []
        for node in candidates[: spec.nnodes]:
            cores = node.free_core_ids()
            gpus = node.free_gpu_ids()
            # Exclusive means "the whole node", but the node must still
            # cover the per-node request — a feasibility mask computed
            # for shared mode (or an undersized node) would otherwise
            # hand the job fewer cores/GPUs than it asked for.
            if len(cores) < spec.ncores or len(gpus) < spec.ngpus:
                return None
            self._pick_cost(node, len(cores), len(gpus))
            placement.append((node.node_id, cores, gpus))
        return placement
