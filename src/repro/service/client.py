"""A stdlib JSON client for the control plane, one method per route.

Tests, the EXPERIMENTS.md walkthrough, and scripts use this instead of
hand-rolling ``curl``/``http.client`` calls. Every method returns the
decoded JSON payload; any status ≥ 400 raises :class:`ServiceError`
carrying the HTTP status and the server's ``error`` string.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Optional
from urllib.parse import urlencode

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An API call failed; carries the HTTP status and server detail."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.detail = detail


class ServiceClient:
    """Talks to one ``repro serve`` daemon over HTTP/JSON."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # --- transport --------------------------------------------------------

    def _request(self, method: str, path: str,
                 query: Optional[Dict[str, Any]] = None,
                 body: Optional[Dict[str, Any]] = None) -> Any:
        if query:
            path = f"{path}?{urlencode(query)}"
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        data = json.loads(raw.decode("utf-8")) if raw else {}
        if response.status >= 400:
            detail = data.get("error", raw.decode("utf-8", "replace")) \
                if isinstance(data, dict) else str(data)
            raise ServiceError(response.status, detail)
        return data

    # --- daemon -----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def ready(self) -> bool:
        try:
            return bool(self._request("GET", "/v1/ready").get("ready"))
        except ServiceError as exc:
            if exc.status == 503:
                return False
            raise

    def info(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/info")

    def tenants(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/tenants")["tenants"]

    def drain(self) -> Dict[str, Any]:
        return self._request("POST", "/v1/drain")

    def trace(self, limit: int = 100) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/trace",
                             query={"limit": limit})["spans"]

    # --- campaigns --------------------------------------------------------

    def submit(self, tenant: str, rounds: Optional[int] = None,
               name: str = "", seed: int = 0,
               workflow: Optional[Dict[str, Any]] = None,
               **extra: Any) -> Dict[str, Any]:
        body: Dict[str, Any] = {"tenant": tenant, "seed": seed, **extra}
        if rounds is not None:
            body["rounds"] = rounds
        if name:
            body["name"] = name
        if workflow is not None:
            body["workflow"] = workflow
        return self._request("POST", "/v1/campaigns", body=body)["campaign"]

    def campaigns(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        query = {"tenant": tenant} if tenant else None
        return self._request("GET", "/v1/campaigns", query=query)["campaigns"]

    def status(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/campaigns/{campaign_id}")["campaign"]

    def pause(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("POST",
                             f"/v1/campaigns/{campaign_id}/pause")["campaign"]

    def resume(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("POST",
                             f"/v1/campaigns/{campaign_id}/resume")["campaign"]

    def cancel(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("POST",
                             f"/v1/campaigns/{campaign_id}/cancel")["campaign"]

    def delete(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("DELETE",
                             f"/v1/campaigns/{campaign_id}")["deleted"]

    def telemetry(self, campaign_id: str) -> Dict[str, Any]:
        return self._request(
            "GET", f"/v1/campaigns/{campaign_id}/telemetry")["telemetry"]

    def campaign_trace(self, campaign_id: str,
                       limit: int = 100) -> List[Dict[str, Any]]:
        return self._request("GET", f"/v1/campaigns/{campaign_id}/trace",
                             query={"limit": limit})["spans"]

    # --- convenience ------------------------------------------------------

    def wait(self, campaign_id: str, timeout: float = 60.0,
             poll: float = 0.05) -> Dict[str, Any]:
        """Poll until the campaign reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            snap = self.status(campaign_id)
            if snap["state"] in ("done", "failed", "cancelled"):
                return snap
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} still {snap['state']!r} "
                    f"after {timeout}s")
            time.sleep(poll)
