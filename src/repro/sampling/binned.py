"""The binned (histogram) sampler for CG-frame selection.

§4.4 Task 2: the CG-frame encoding is 3-D but "represents three
disparate quantities; therefore, the L2 distance is not meaningful. To
support a functionally useful sampling, a binned sampler was developed
... that allows treating the three dimensions of the encoding
separately. The binned sampling approach also facilitates control over
the balance between importance and randomness ... This new sampling
approach is capable of providing significantly faster updates to
ranking: 3-4 minutes for 9M candidates."

The speed claim is structural: candidates are bucketed into a discrete
histogram at ingest (O(1) per candidate), and a selection just finds
the least-simulated occupied bin (O(#bins)) — no distance computation
ever touches the millions of candidates. That is the 165× capacity
improvement the S4 ablation bench measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import trace
from repro.sampling.base import Sampler
from repro.sampling.points import Point

__all__ = ["BinSpec", "BinnedSampler"]


@dataclass(frozen=True)
class BinSpec:
    """Per-dimension binning: ``nbins`` equal bins over [lo, hi].

    Out-of-range values clamp into the edge bins — every candidate must
    land somewhere; the encoding bounds are advisory.
    """

    lo: float
    hi: float
    nbins: int

    def __post_init__(self) -> None:
        if self.nbins < 1:
            raise ValueError("nbins must be >= 1")
        if not self.hi > self.lo:
            raise ValueError("hi must exceed lo")

    def bin_of(self, values: np.ndarray) -> np.ndarray:
        """Vectorized bin index for each value, clamped to [0, nbins-1]."""
        scaled = (np.asarray(values, dtype=float) - self.lo) / (self.hi - self.lo)
        idx = np.floor(scaled * self.nbins).astype(np.int64)
        return np.clip(idx, 0, self.nbins - 1)


class BinnedSampler(Sampler):
    """Histogram-based selection balancing importance and randomness.

    Parameters
    ----------
    specs:
        One :class:`BinSpec` per encoding dimension (three for CG frames).
    randomness:
        Probability that a selection ignores the histogram and picks a
        uniformly random candidate — the paper's "balance between
        importance and randomness". 0 = always least-simulated bin.
    rng:
        Seeded generator (selection is stochastic by design).
    """

    def __init__(
        self,
        specs: Sequence[BinSpec],
        randomness: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not specs:
            raise ValueError("need at least one BinSpec")
        if not 0.0 <= randomness <= 1.0:
            raise ValueError("randomness must be in [0, 1]")
        self.specs = tuple(specs)
        self.randomness = randomness
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._shape = tuple(s.nbins for s in self.specs)
        self._nbins = int(np.prod(self._shape))
        # candidates bucketed by flat bin id; lists support O(1) swap-pop.
        self._bins: Dict[int, List[Point]] = {}
        self._total = 0
        self._ids = set()
        # how many selections each bin has produced ("simulated density")
        self.selected_counts = np.zeros(self._nbins, dtype=np.int64)

    # --- binning ---------------------------------------------------------

    def flat_bin(self, coords: np.ndarray) -> int:
        """Flat bin index of one encoding vector."""
        coords = np.asarray(coords, dtype=float)
        if coords.shape != (len(self.specs),):
            raise ValueError(
                f"expected {len(self.specs)}-D encoding, got shape {coords.shape}"
            )
        multi = tuple(
            int(spec.bin_of(np.array([coords[d]]))[0]) for d, spec in enumerate(self.specs)
        )
        return int(np.ravel_multi_index(multi, self._shape))

    # --- Sampler API -------------------------------------------------------

    def add(self, point: Point) -> None:
        """O(1) ingest: bucket the candidate, nothing else."""
        if point.id in self._ids:
            return  # duplicate frame id (analysis re-emitted it)
        b = self.flat_bin(point.coords)
        self._bins.setdefault(b, []).append(point)
        self._ids.add(point.id)
        self._total += 1

    def ncandidates(self) -> int:
        return self._total

    def select(self, k: int, now: float = 0.0) -> List[Point]:
        """Consume ``k`` candidates, preferring under-simulated bins."""
        if k < 1:
            raise ValueError("k must be >= 1")
        with trace.span("select.frame") as sp:
            chosen: List[Point] = []
            for _ in range(k):
                if self._total == 0:
                    break
                if self.randomness > 0 and self.rng.random() < self.randomness:
                    point = self._pop_random()
                else:
                    point = self._pop_least_simulated()
                chosen.append(point)
            if sp:
                sp.set(k=k, chosen=len(chosen), candidates=self._total)
        self._record(now, chosen, detail=f"randomness={self.randomness}")
        return chosen

    # --- selection internals -----------------------------------------------

    def _pop_from_bin(self, bin_id: int) -> Point:
        bucket = self._bins[bin_id]
        i = int(self.rng.integers(len(bucket)))
        bucket[i], bucket[-1] = bucket[-1], bucket[i]
        point = bucket.pop()
        if not bucket:
            del self._bins[bin_id]
        self._ids.discard(point.id)
        self._total -= 1
        self.selected_counts[bin_id] += 1
        return point

    def _pop_least_simulated(self) -> Point:
        occupied = np.fromiter(self._bins.keys(), dtype=np.int64)
        counts = self.selected_counts[occupied]
        best = occupied[counts == counts.min()]
        bin_id = int(self.rng.choice(best))  # random among tied bins
        return self._pop_from_bin(bin_id)

    def _pop_random(self) -> Point:
        # Weight bins by occupancy so every candidate is equally likely.
        occupied = list(self._bins.keys())
        weights = np.array([len(self._bins[b]) for b in occupied], dtype=float)
        bin_id = int(self.rng.choice(occupied, p=weights / weights.sum()))
        return self._pop_from_bin(bin_id)

    # --- introspection ---------------------------------------------------------

    def occupancy(self) -> Dict[int, int]:
        """Candidates per occupied flat bin."""
        return {b: len(pts) for b, pts in self._bins.items()}

    def coverage(self) -> float:
        """Fraction of bins that have produced at least one selection."""
        return float(np.count_nonzero(self.selected_counts)) / self._nbins
