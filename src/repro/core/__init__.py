"""The coordination layer: Workflow Manager, trackers, feedback, campaign.

§4.4: "MuMMI is coordinated by a configurable Workflow Manager (WM).
Generically, the role of the WM is to couple the scales by consuming
relevant data, supporting ML-based selection, spawning the
corresponding simulations, and facilitating a feedback loop."

- :mod:`~repro.core.patches` — Task 1: macro-data processing (the Patch
  Creator).
- :mod:`~repro.core.jobs` — Task 3: the generic, configurable Job
  Tracker.
- :mod:`~repro.core.feedback` — Task 4: the abstract Feedback Manager
  with namespace-move tagging.
- :mod:`~repro.core.wm` — the Workflow Manager tying the four
  concurrent tasks together (Task 2, selection, lives in
  :mod:`repro.sampling` and is wired in here).
- :mod:`~repro.core.perfmodel` — published per-scale performance rates
  (Fig. 4) used by the campaign simulator.
- :mod:`~repro.core.profiling` — the resource-occupancy profiler
  (Fig. 5).
- :mod:`~repro.core.campaign` — the discrete-event campaign simulator
  standing in for Summit (Table 1, Figs. 3-6).
"""

from repro.core.patches import Patch, PatchCreator
from repro.core.jobs import JobTypeConfig, JobTracker
from repro.core.feedback import FeedbackManager, FeedbackReport
from repro.core.perfmodel import PerformanceModel, PerfSample
from repro.core.profiling import OccupancyProfiler, ProfileEvent
from repro.core.wm import WorkflowManager, WorkflowConfig
from repro.core.campaign import (
    CampaignConfig,
    CampaignResult,
    CampaignSimulator,
    RunSpec,
    PAPER_LEDGER,
)
from repro.core.persistent import (
    AllocationBroker,
    ClusterSpec,
    PersistentCampaign,
)
from repro.core.replay import (
    ScheduleTimeline,
    verify_selector_replay,
    save_history,
    load_history,
)
from repro.core.config import (
    load_config_file,
    workflow_config,
    campaign_config,
    application_kwargs,
)

__all__ = [
    "Patch",
    "PatchCreator",
    "JobTypeConfig",
    "JobTracker",
    "FeedbackManager",
    "FeedbackReport",
    "PerformanceModel",
    "PerfSample",
    "OccupancyProfiler",
    "ProfileEvent",
    "WorkflowManager",
    "WorkflowConfig",
    "CampaignConfig",
    "CampaignResult",
    "CampaignSimulator",
    "RunSpec",
    "PAPER_LEDGER",
    "AllocationBroker",
    "ClusterSpec",
    "PersistentCampaign",
    "ScheduleTimeline",
    "verify_selector_replay",
    "save_history",
    "load_history",
    "load_config_file",
    "workflow_config",
    "campaign_config",
    "application_kwargs",
]
