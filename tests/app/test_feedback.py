"""Tests for the two application feedback managers."""

import numpy as np
import pytest

from repro.app.feedback import AAToCGFeedback, CGToContinuumFeedback, rdf_to_coupling
from repro.datastore import KVStore
from repro.sims.cg.analysis import RDFResult
from repro.sims.cg.forcefield import martini_like
from repro.sims.cg.engine import CGConfig, CGSim
from repro.sims.continuum.ddft import ContinuumConfig, ContinuumSim

CONT_CFG = ContinuumConfig(grid=16, n_inner=2, n_outer=2, n_proteins=2, dt=0.25, seed=0)


def make_rdf(sim_id, g_values, nbins=10, rmax=3.0):
    edges = np.linspace(0, rmax, nbins + 1)
    g = np.asarray(g_values, dtype=float)
    return RDFResult(sim_id=sim_id, time=1.0, edges=edges, g=g)


class TestRdfToCoupling:
    def test_uniform_rdf_gives_zero(self):
        edges = np.linspace(0, 3, 11)
        g = np.ones((2, 10))
        np.testing.assert_allclose(rdf_to_coupling(edges, g), 0.0)

    def test_enrichment_gives_positive(self):
        edges = np.linspace(0, 3, 11)
        g = np.ones((1, 10))
        g[0, :3] = 3.0  # enriched near the protein
        assert rdf_to_coupling(edges, g)[0] > 0

    def test_depletion_gives_negative(self):
        edges = np.linspace(0, 3, 11)
        g = np.ones((1, 10))
        g[0, :3] = 0.1
        assert rdf_to_coupling(edges, g)[0] < 0

    def test_near_field_weighted_more(self):
        edges = np.linspace(0, 3, 11)
        near = np.ones((1, 10)); near[0, 0] = 2.0
        far = np.ones((1, 10)); far[0, -1] = 2.0
        assert rdf_to_coupling(edges, near)[0] > rdf_to_coupling(edges, far)[0]


class TestCGToContinuum:
    def _manager(self, store=None):
        store = store or KVStore(nservers=2)
        cont = ContinuumSim(CONT_CFG)
        return CGToContinuumFeedback(store, cont), store, cont

    def test_iteration_updates_continuum(self):
        mgr, store, cont = self._manager()
        g = np.ones((2, 10)); g[0, :3] = 4.0; g[1, :3] = 0.1
        store.write("rdf/live/f1", make_rdf("cg1", g).to_bytes())
        v0 = cont.coupling_version
        rep = mgr.run_iteration(now=5.0)
        assert rep.n_items == 1
        assert cont.coupling_version == v0 + 1
        # Enriched type pulled up, depleted type pushed down.
        assert cont.g_inner[0, 0] > cont.g_inner[1, 0]

    def test_aggregates_many_frames(self):
        mgr, store, cont = self._manager()
        for i in range(20):
            g = np.ones((2, 10)); g[0, :3] = 2.0
            store.write(f"rdf/live/f{i:02d}", make_rdf(f"cg{i}", g).to_bytes())
        rep = mgr.run_iteration()
        assert rep.n_items == 20
        assert store.keys("rdf/live/") == []
        assert len(store.keys("rdf/done/")) == 20

    def test_empty_iteration_no_update(self):
        mgr, _, cont = self._manager()
        mgr.run_iteration()
        assert cont.coupling_version == 0

    def test_blend_bounds(self):
        store = KVStore()
        cont = ContinuumSim(CONT_CFG)
        with pytest.raises(ValueError):
            CGToContinuumFeedback(store, cont, blend=0.0)

    def test_blend_moves_partially(self):
        store = KVStore(nservers=1)
        cont = ContinuumSim(CONT_CFG)
        mgr = CGToContinuumFeedback(store, cont, blend=0.5)
        before = cont.g_inner.copy()
        g = np.ones((2, 10)); g[:, :3] = 5.0
        store.write("rdf/live/f", make_rdf("x", g).to_bytes())
        mgr.run_iteration()
        target = rdf_to_coupling(np.linspace(0, 3, 11), g)
        expected = 0.5 * before[0, 0] + 0.5 * target[0]
        assert cont.g_inner[0, 0] == pytest.approx(expected)


class TestAAToCG:
    def _manager(self, processor=None, sims=()):
        store = KVStore(nservers=2)
        ff = martini_like(2)
        mgr = AAToCGFeedback(store, ff, sims=sims, external_processor=processor)
        return mgr, store, ff

    def test_consensus_refines_forcefield(self):
        mgr, store, ff = self._manager()
        for i, pattern in enumerate(["HHCC", "HHCC", "HECC"]):
            store.write(f"ss/live/f{i}", pattern.encode())
        v0 = ff.version
        rep = mgr.run_iteration()
        assert rep.n_items == 3
        assert ff.version == v0 + 1
        assert ff.ss_pattern == "HHCC"

    def test_external_processor_called_per_frame(self):
        calls = []

        def processor(p):
            calls.append(p)
            return p

        mgr, store, _ = self._manager(processor=processor)
        for i in range(5):
            store.write(f"ss/live/f{i}", b"HHHH")
        mgr.run_iteration()
        assert len(calls) == 5

    def test_running_sims_get_refreshed(self):
        sim = CGSim.random_system(config=CGConfig(n_lipids=10, seed=0))
        store = KVStore()
        mgr = AAToCGFeedback(store, sim.ff, sims=[sim])
        store.write("ss/live/f0", b"CCCCC")
        k_before = sim._bond_k.copy()
        mgr.run_iteration()
        assert not np.array_equal(k_before, sim._bond_k)

    def test_mixed_lengths_vote_within_majority_group(self):
        mgr, store, ff = self._manager()
        store.write("ss/live/a", b"HHH")
        store.write("ss/live/b", b"HHH")
        store.write("ss/live/c", b"EEEEE")
        mgr.run_iteration()
        assert ff.ss_pattern == "HHH"

    def test_tagging_moves_frames(self):
        mgr, store, _ = self._manager()
        store.write("ss/live/f0", b"HH")
        mgr.run_iteration()
        assert store.keys("ss/live/") == []
        assert store.read("ss/done/f0") == b"HH"

    def test_pool_size_validation(self):
        with pytest.raises(ValueError):
            AAToCGFeedback(KVStore(), martini_like(2), pool_size=0)

    def test_pooled_processing_matches_serial(self):
        serial_mgr, s1, ff1 = self._manager()
        pooled = AAToCGFeedback(KVStore(nservers=2), martini_like(2), pool_size=8)
        patterns = ["HHCC", "HHCC", "HHEE", "CCCC", "HHCC"]
        for i, p in enumerate(patterns):
            s1.write(f"ss/live/f{i}", p.encode())
            pooled.store.write(f"ss/live/f{i}", p.encode())
        serial_mgr.run_iteration()
        pooled.run_iteration()
        assert serial_mgr.forcefield.ss_pattern == pooled.forcefield.ss_pattern
