"""In-memory key-value cluster modeled on MuMMI's Redis interface.

The paper (§4.2, §5.2) runs a 20-node Redis cluster as a "short-term
and highly responsive in-memory cache" for the CG→continuum feedback
loop, with clients on all compute nodes mapped randomly to servers.
This module reproduces that architecture in-process:

- :class:`KVServer` — one shard: a dict plus the operation set the
  feedback loop needs (set/get/delete/rename/scan/append-to-list).
- :class:`KVCluster` — routes keys to shards by a stable hash (the
  Redis hash-slot idea), aggregates scans, and tracks per-op counters.
- :class:`LatencyModel` — optional per-operation virtual-time costs so
  the campaign simulator can account for feedback I/O without real
  sleeping; real-time benchmarks run with no model and measure actual
  throughput.
- :class:`KVStore` — the :class:`~repro.datastore.base.DataStore`
  adapter, so feedback can switch between filesystem and KV backends
  with one configuration line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datastore.base import DataStore, KeyNotFound, StoreError, validate_key

__all__ = ["KVServer", "KVCluster", "KVStore", "LatencyModel", "OpCounters"]

_HASH_SLOTS = 16384  # as in Redis Cluster


def _crc16_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return table


_CRC16_TABLE = _crc16_table()


def _crc16(data: bytes) -> int:
    """CRC16-CCITT (XModem), the hash Redis Cluster uses for slotting.

    Table-driven (one lookup per byte): key_slot sits on the routing
    hot path of every cluster operation, and batched mget/mset hash
    each key of the batch, so the bit-by-bit loop showed up as the
    single largest cost in pipelined round trips.
    """
    crc = 0
    table = _CRC16_TABLE
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ table[(crc >> 8) ^ byte]
    return crc


def key_slot(key: str) -> int:
    """Hash slot for a key (honors Redis-style ``{hash tags}``)."""
    raw = key
    lb = key.find("{")
    if lb != -1:
        rb = key.find("}", lb + 1)
        if rb != -1 and rb > lb + 1:
            raw = key[lb + 1 : rb]
    return _crc16(raw.encode("utf-8")) % _HASH_SLOTS


@dataclass
class OpCounters:
    """Per-operation call counters, used by Fig. 7-style benchmarks."""

    get: int = 0
    set: int = 0
    delete: int = 0
    scan: int = 0
    rename: int = 0

    def total(self) -> int:
        return self.get + self.set + self.delete + self.scan + self.rename


@dataclass(frozen=True)
class LatencyModel:
    """Virtual-time cost of one operation against one server.

    ``cost(op, nbytes)`` returns seconds of simulated time; the campaign
    simulator advances its clock by this amount. Defaults approximate
    the throughputs in Fig. 7: ~10k key scans+deletes/s, ~2k value
    reads/s at the 4000-node scale.
    """

    per_op: float = 1e-4  # base round-trip
    per_byte: float = 2e-9  # payload transfer
    scan_per_key: float = 1e-5  # incremental cost of each key returned

    def cost(self, op: str, nbytes: int = 0, nkeys: int = 0) -> float:
        c = self.per_op + nbytes * self.per_byte
        if op == "scan":
            c += nkeys * self.scan_per_key
        return c


class KVServer:
    """A single in-memory shard."""

    def __init__(self, server_id: int = 0) -> None:
        self.server_id = server_id
        self._data: Dict[str, bytes] = {}
        self.counters = OpCounters()

    def __len__(self) -> int:
        return len(self._data)

    def set(self, key: str, value: bytes) -> None:
        self.counters.set += 1
        self._data[key] = value

    def get(self, key: str) -> bytes:
        self.counters.get += 1
        try:
            return self._data[key]
        except KeyError:
            raise KeyNotFound(key) from None

    def delete(self, key: str) -> None:
        self.counters.delete += 1
        if self._data.pop(key, None) is None:
            raise KeyNotFound(key)

    def rename(self, src: str, dst: str) -> None:
        self.counters.rename += 1
        try:
            self._data[dst] = self._data.pop(src)
        except KeyError:
            raise KeyNotFound(src) from None

    def scan(self, prefix: str = "") -> List[str]:
        self.counters.scan += 1
        return [k for k in self._data if k.startswith(prefix)]

    # --- batched primitives (one lock hold per wire round trip) ----------

    def mget(self, keys: List[str]) -> List[Optional[bytes]]:
        """Values for ``keys`` in order; missing keys yield None (the
        pipelined read never aborts a whole batch over one absent key)."""
        self.counters.get += len(keys)
        return [self._data.get(k) for k in keys]

    def mset(self, items: List[Tuple[str, bytes]]) -> int:
        self.counters.set += len(items)
        for key, value in items:
            self._data[key] = value
        return len(items)

    def msetnx(self, items: List[Tuple[str, bytes]]) -> List[bool]:
        """Set each pair only where the key is absent; per-key flags say
        which were stored. The slot-migration copier leans on this so a
        source-side copy can never overwrite a fresher value that was
        dual-written to the destination mid-copy."""
        flags = []
        for key, value in items:
            if key in self._data:
                flags.append(False)
            else:
                self.counters.set += 1
                self._data[key] = value
                flags.append(True)
        return flags

    def mdelete(self, keys: List[str]) -> List[bool]:
        """Delete ``keys``; per-key flags say which actually existed
        (a replicated caller ORs the flags across copies)."""
        self.counters.delete += len(keys)
        return [self._data.pop(k, None) is not None for k in keys]

    def flush(self) -> None:
        self._data.clear()

    def items(self) -> List[Tuple[str, bytes]]:
        """A stable copy of the key space (snapshot writers iterate it
        outside any lock the caller holds while taking the copy)."""
        return list(self._data.items())

    def memory_bytes(self) -> int:
        return sum(len(v) for v in self._data.values())


class KVCluster:
    """A fixed set of shards with slot-based routing.

    Parameters
    ----------
    nservers:
        Number of shards ("Redis nodes"). The paper's scaling run used 20.
    latency:
        Optional :class:`LatencyModel`; when given, every operation adds
        its cost to :attr:`virtual_time_spent` (the campaign simulator
        reads and resets this).
    """

    def __init__(self, nservers: int = 1, latency: Optional[LatencyModel] = None) -> None:
        if nservers < 1:
            raise StoreError("cluster needs at least one server")
        self.servers = [KVServer(i) for i in range(nservers)]
        self.latency = latency
        self.virtual_time_spent = 0.0

    def _charge(self, op: str, nbytes: int = 0, nkeys: int = 0) -> None:
        if self.latency is not None:
            self.virtual_time_spent += self.latency.cost(op, nbytes, nkeys)

    def server_for(self, key: str) -> KVServer:
        return self.servers[key_slot(key) % len(self.servers)]

    # --- cluster-wide operations ------------------------------------------

    def set(self, key: str, value: bytes) -> None:
        self._charge("set", len(value))
        self.server_for(key).set(key, value)

    def get(self, key: str) -> bytes:
        value = self.server_for(key).get(key)
        self._charge("get", len(value))
        return value

    def delete(self, key: str) -> None:
        self._charge("delete")
        self.server_for(key).delete(key)

    def rename(self, src: str, dst: str) -> None:
        src_server = self.server_for(src)
        dst_server = self.server_for(dst)
        if src_server is dst_server:
            self._charge("rename")
            src_server.rename(src, dst)
        else:
            # Cross-slot rename = get + set + delete, like a real cluster.
            value = src_server.get(src)
            self._charge("rename", len(value))
            dst_server.set(dst, value)
            src_server.delete(src)

    def scan(self, prefix: str = "") -> List[str]:
        keys: List[str] = []
        for server in self.servers:
            keys.extend(server.scan(prefix))
        self._charge("scan", nkeys=len(keys))
        return sorted(keys)

    # --- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(s) for s in self.servers)

    def counters(self) -> OpCounters:
        agg = OpCounters()
        for s in self.servers:
            agg.get += s.counters.get
            agg.set += s.counters.set
            agg.delete += s.counters.delete
            agg.scan += s.counters.scan
            agg.rename += s.counters.rename
        return agg

    def balance(self) -> Tuple[int, int]:
        """(min, max) keys per shard — how even the slot routing is."""
        sizes = [len(s) for s in self.servers]
        return min(sizes), max(sizes)

    def memory_bytes(self) -> int:
        return sum(s.memory_bytes() for s in self.servers)

    def drain_virtual_time(self) -> float:
        """Return and reset accumulated simulated I/O time."""
        t, self.virtual_time_spent = self.virtual_time_spent, 0.0
        return t


class KVStore(DataStore):
    """DataStore adapter over a :class:`KVCluster`."""

    def __init__(self, cluster: Optional[KVCluster] = None, nservers: int = 1) -> None:
        self.cluster = cluster if cluster is not None else KVCluster(nservers=nservers)

    def write(self, key: str, data: bytes) -> None:
        self.cluster.set(validate_key(key), data)

    def read(self, key: str) -> bytes:
        return self.cluster.get(key)

    def delete(self, key: str) -> None:
        self.cluster.delete(key)

    def keys(self, prefix: str = "") -> List[str]:
        return self.cluster.scan(prefix)

    def move(self, src: str, dst: str) -> None:
        self.cluster.rename(src, validate_key(dst))
