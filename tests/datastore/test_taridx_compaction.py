"""Tests for taridx compaction (space reclamation of dead entries)."""

import os
import tarfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datastore.taridx import IndexedTar, TaridxStore


class TestIndexedTarCompaction:
    def test_compact_drops_superseded_versions(self, tmp_path):
        arc = IndexedTar(str(tmp_path / "a.tar"))
        for _ in range(10):
            arc.append("k", b"x" * 4096)  # 10 versions, 9 dead
        assert arc.dead_payload() == 9 * 4096
        freed = arc.compact()
        # tar archives have a 10 KiB end-of-archive record, so savings
        # are measured above that floor.
        assert freed > 7 * 4096
        assert arc.read("k") == b"x" * 4096
        assert arc.dead_payload() == 0
        arc.close()

    def test_compact_drops_tombstoned_keys(self, tmp_path):
        arc = IndexedTar(str(tmp_path / "a.tar"))
        arc.append("keep", b"live")
        arc.append("dead", b"y" * 50_000)
        arc.tombstone("dead")
        assert arc.dead_payload() >= 50_000
        freed = arc.compact()
        assert freed >= 40_000
        assert arc.read("keep") == b"live"
        assert "dead" not in arc
        arc.close()

    def test_compacted_archive_is_standard_tar(self, tmp_path):
        path = str(tmp_path / "a.tar")
        arc = IndexedTar(path)
        arc.append("x", b"1")
        arc.append("x", b"2")
        arc.append("y", b"3")
        arc.compact()
        arc.close()
        with tarfile.open(path) as tar:
            names = tar.getnames()
            assert sorted(names) == ["x", "y"]
            assert tar.extractfile("x").read() == b"2"

    def test_writes_continue_after_compaction(self, tmp_path):
        arc = IndexedTar(str(tmp_path / "a.tar"))
        arc.append("a", b"1")
        arc.append("a", b"2")
        arc.compact()
        arc.append("b", b"3")
        assert arc.read("a") == b"2"
        assert arc.read("b") == b"3"
        arc.close()

    def test_compaction_survives_reopen(self, tmp_path):
        path = str(tmp_path / "a.tar")
        arc = IndexedTar(path)
        for i in range(5):
            arc.append("k", str(i).encode())
        arc.compact()
        arc.close()
        arc2 = IndexedTar(path)
        assert arc2.read("k") == b"4"
        assert len(arc2) == 1
        arc2.close()

    def test_live_bytes_accounting(self, tmp_path):
        arc = IndexedTar(str(tmp_path / "a.tar"))
        arc.append("a", b"x" * 100)
        arc.append("b", b"y" * 50)
        assert arc.live_bytes() == 150
        arc.tombstone("a")
        assert arc.live_bytes() == 50
        arc.close()

    def test_compact_empty_archive(self, tmp_path):
        arc = IndexedTar(str(tmp_path / "a.tar"))
        arc.append("only", b"z")
        arc.tombstone("only")
        arc.compact()
        assert len(arc) == 0
        arc.close()


class TestStoreCompaction:
    def test_store_compact_preserves_all_data(self, tmp_path):
        store = TaridxStore(str(tmp_path), max_entries=10)
        for i in range(30):
            store.write(f"k{i % 7}", f"v{i}".encode())  # heavy overwriting
        expected = {f"k{i}": store.read(f"k{i}") for i in range(7)}
        freed = store.compact()
        assert freed > 0
        for key, value in expected.items():
            assert store.read(key) == value
        assert store.nentries() == 7
        store.close()

    def test_wasted_bytes_reports_dead_payload(self, tmp_path):
        store = TaridxStore(str(tmp_path))
        store.write("k", b"x" * 1000)
        store.write("k", b"x" * 1000)
        assert store.wasted_bytes() == 1000
        store.compact()
        assert store.wasted_bytes() == 0
        store.close()

    def test_moves_survive_compaction(self, tmp_path):
        store = TaridxStore(str(tmp_path))
        store.write("live/a", b"payload")
        store.move("live/a", "done/a")
        store.compact()
        assert store.read("done/a") == b"payload"
        assert store.keys() == ["done/a"]
        store.close()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["write", "delete"]),
                  st.sampled_from(["a", "b", "c"]),
                  st.binary(min_size=1, max_size=40)),
        min_size=1, max_size=40,
    )
)
def test_property_compaction_preserves_visible_state(tmp_path_factory, ops):
    tmp = tmp_path_factory.mktemp("compact")
    arc = IndexedTar(str(tmp / "a.tar"))
    model = {}
    for op, key, payload in ops:
        if op == "write":
            arc.append(key, payload)
            model[key] = payload
        elif key in model:
            arc.tombstone(key)
            del model[key]
    arc.compact()
    assert sorted(arc.keys()) == sorted(model)
    for key, value in model.items():
        assert arc.read(key) == value
    arc.close()
