"""Farthest-point sampling over capped candidate queues (the Patch Selector core).

Novelty ranking follows Bhatia et al. (2021): a candidate's importance
is its L2 distance to the nearest *already-selected* point in encoding
space; selecting the farthest point steers the ensemble toward
configurations unlike anything simulated so far.

Scaling devices from §4.4 Task 2, all reproduced here:

- multiple named in-memory queues, each capped (default 35,000);
- candidate ingest is O(1) — ranks are stale until a selection asks
  for them (the "caching scheme to postpone expensive computations");
- rank updates are one vectorized nearest-neighbour query per queue
  against a pluggable exact/approximate index.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import trace
from repro.sampling.ann import KDTreeIndex, NeighborIndex
from repro.sampling.base import Sampler
from repro.sampling.points import Point
from repro.sampling.queues import CandidateQueue, QueueFullPolicy

__all__ = ["FarthestPointSampler"]

DEFAULT_QUEUE = "default"


class FarthestPointSampler(Sampler):
    """Dynamic farthest-point selection with lazy rank updates.

    Parameters
    ----------
    dim:
        Encoding dimensionality (9 for the paper's patches).
    queues:
        Names of candidate queues (the paper uses five, one per protein
        configuration class). Defaults to a single queue.
    queue_cap:
        Per-queue candidate cap (paper: 35,000).
    index:
        Nearest-neighbour backend over the selected set; defaults to an
        exact KD-tree. Swap in :class:`~repro.sampling.ann.ProjectionIndex`
        for FAISS-style approximate queries.
    """

    def __init__(
        self,
        dim: int,
        queues: Optional[Sequence[str]] = None,
        queue_cap: int = 35_000,
        index: Optional[NeighborIndex] = None,
        queue_policy: QueueFullPolicy = QueueFullPolicy.DROP_OLDEST,
    ) -> None:
        super().__init__()
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = dim
        names = list(queues) if queues else [DEFAULT_QUEUE]
        self.queues: Dict[str, CandidateQueue] = {
            name: CandidateQueue(name, cap=queue_cap, policy=queue_policy) for name in names
        }
        self.index = index if index is not None else KDTreeIndex()
        self._selected_coords: List[np.ndarray] = []
        self._selected_ids: List[str] = []
        self._index_dirty = False
        self.last_update_seconds = 0.0  # cost of the most recent rank update

    # --- ingest (cheap) ------------------------------------------------------

    def add(self, point: Point, queue: str = DEFAULT_QUEUE) -> None:
        """O(1) ingest into one queue; no ranking happens here."""
        if point.dim != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {point.dim}")
        try:
            self.queues[queue].add(point)
        except KeyError:
            raise KeyError(f"unknown queue {queue!r}; have {sorted(self.queues)}") from None

    def ncandidates(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def nselected(self) -> int:
        return len(self._selected_ids)

    # --- selection (expensive, on demand) --------------------------------------

    def _refresh_index(self) -> None:
        if self._index_dirty or self.index.size != len(self._selected_ids):
            coords = (
                np.vstack(self._selected_coords)
                if self._selected_coords
                else np.empty((0, self.dim))
            )
            self.index.build(coords)
            self._index_dirty = False

    def rank(self, queue: str) -> List[tuple]:
        """(point, novelty) for every candidate in a queue, best first.

        Novelty is distance-to-nearest-selected; before anything has
        been selected every candidate is infinitely novel and arrival
        order breaks the tie.
        """
        q = self.queues[queue]
        pts = q.points()
        if not pts:
            return []
        self._refresh_index()
        coords = np.vstack([p.coords for p in pts])
        dists = self.index.nearest_distance(coords)
        order = np.argsort(-dists, kind="stable")  # stable: FIFO tie-break
        return [(pts[i], float(dists[i])) for i in order]

    def select(self, k: int, now: float = 0.0, queue: Optional[str] = None) -> List[Point]:
        """Consume the ``k`` most novel candidates.

        With multiple queues and no explicit ``queue``, selections are
        taken round-robin across non-empty queues so every protein
        configuration class keeps getting simulated.

        True farthest-point semantics: after each pick the selected set
        (and hence every remaining candidate's novelty) is updated.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        t0 = time.perf_counter()
        with trace.span("select.patch") as sp:
            chosen: List[Point] = []
            names = [queue] if queue is not None else list(self.queues)
            cursor = 0
            while len(chosen) < k:
                # Next non-empty queue in round-robin order.
                for _ in range(len(names)):
                    name = names[cursor % len(names)]
                    cursor += 1
                    if len(self.queues[name]):
                        break
                else:
                    break  # all queues empty
                ranked = self.rank(name)
                best, _novelty = ranked[0]
                self.queues[name].pop(best.id)
                self._mark_selected(best)
                chosen.append(best)
            if sp:
                sp.set(k=k, chosen=len(chosen),
                       candidates=self.ncandidates())
        self.last_update_seconds = time.perf_counter() - t0
        self._record(now, chosen, detail=f"queue={queue or 'round-robin'}")
        return chosen

    def _mark_selected(self, point: Point) -> None:
        self._selected_ids.append(point.id)
        self._selected_coords.append(np.asarray(point.coords, dtype=np.float64))
        self._index_dirty = True

    def seed_selected(self, points: Sequence[Point]) -> None:
        """Declare points as already simulated (checkpoint restore path)."""
        for p in points:
            if p.dim != self.dim:
                raise ValueError(f"expected dim {self.dim}, got {p.dim}")
            self._mark_selected(p)

    # --- introspection --------------------------------------------------------

    def queue_sizes(self) -> Dict[str, int]:
        return {name: len(q) for name, q in self.queues.items()}

    def dropped(self) -> int:
        return sum(q.dropped for q in self.queues.values())
