"""Wire-protocol hardening tests: hand-rolled frames against the server.

These talk raw TCP, not through :class:`NetKVClient`, because the bugs
they pin down (desync after a malformed SET header, spinning on blank
lines, unbounded headers) can only be produced by a misbehaving peer.
"""

import socket
import threading

import pytest

from repro.datastore.base import StoreError
from repro.datastore.netkv import NetKVClient, NetKVServer, WireProtocolError


@pytest.fixture
def server():
    srv = NetKVServer().start()
    yield srv
    srv.stop()


def raw_exchange(address, data, timeout=2.0):
    """Send bytes, then read until the server closes or goes quiet.

    Returns (response_bytes, closed) where ``closed`` is True when the
    server hung up (EOF) rather than leaving the connection open.
    """
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(data)
        chunks = []
        closed = False
        sock.settimeout(0.5)
        while True:
            try:
                chunk = sock.recv(4096)
            except socket.timeout:
                break
            if not chunk:
                closed = True
                break
            chunks.append(chunk)
        return b"".join(chunks), closed


class TestSetHeaderDesync:
    def test_non_integer_length_errs_and_closes(self, server):
        # Before the fix the payload bytes were parsed as the next
        # header; now the connection gets one ERR and is closed.
        resp, closed = raw_exchange(server.address,
                                    b"SET k notanint\nPAYLOADBYTES")
        assert resp.startswith(b"ERR ")
        assert resp.count(b"ERR") == 1  # payload was NOT parsed as a header
        assert closed

    def test_negative_length_errs_and_closes(self, server):
        resp, closed = raw_exchange(server.address, b"SET k -5\n")
        assert resp.startswith(b"ERR ")
        assert closed

    def test_absurd_length_errs_and_closes(self, server):
        resp, closed = raw_exchange(server.address,
                                    b"SET k 999999999999999\n")
        assert resp.startswith(b"ERR ")
        assert closed

    def test_missing_length_errs_and_closes(self, server):
        resp, closed = raw_exchange(server.address, b"SET keyonly\n")
        assert resp.startswith(b"ERR ")
        assert closed

    def test_server_survives_malformed_set(self, server):
        raw_exchange(server.address, b"SET k notanint\nJUNK")
        client = NetKVClient(server.address)
        client.set("k", b"clean")
        assert client.get("k") == b"clean"
        assert len(client) == 1  # no junk keys leaked into the backend
        client.close()


class TestEmptyHeader:
    def test_blank_line_is_a_protocol_error(self, server):
        # Before the fix `if not header: continue` re-read blank lines
        # forever; now the first one draws ERR and a hangup.
        resp, closed = raw_exchange(server.address, b"\n\n\n")
        assert resp.startswith(b"ERR ")
        assert closed

    def test_server_usable_after_blank_line_peer(self, server):
        raw_exchange(server.address, b"\n")
        client = NetKVClient(server.address)
        assert client.ping()
        client.close()


class TestOversizedHeader:
    def test_header_without_newline_is_bounded(self, server):
        resp, closed = raw_exchange(server.address, b"X" * 100_000)
        assert resp.startswith(b"ERR ")
        assert closed

    def test_huge_header_with_newline_is_rejected(self, server):
        resp, closed = raw_exchange(server.address,
                                    b"GET " + b"k" * 8192 + b"\n")
        assert resp.startswith(b"ERR ")
        assert closed


class TestPayloadEdges:
    def test_zero_length_payload_roundtrip(self, server):
        resp, _ = raw_exchange(server.address, b"SET empty 0\nGET empty\n")
        assert resp == b"OK 0\nOK 0\n"

    def test_non_utf8_header_errs(self, server):
        resp, closed = raw_exchange(server.address, b"GET \xff\xfe\n")
        assert resp.startswith(b"ERR ")
        assert closed


class TestReservedKeyBytes:
    """Keys carrying the KEYS separator or header whitespace must be
    rejected at SET time — otherwise a later KEYS reply would split at
    the wrong place (the ``\\x00`` separator edge case)."""

    def test_client_rejects_nul_key(self, server):
        client = NetKVClient(server.address)
        with pytest.raises(WireProtocolError):
            client.set("bad\x00key", b"v")
        client.close()

    def test_client_rejects_space_key(self, server):
        client = NetKVClient(server.address)
        with pytest.raises(WireProtocolError):
            client.set("bad key", b"v")
        with pytest.raises(WireProtocolError):
            client.rename("ok", "bad key")
        client.close()

    def test_server_rejects_nul_key_from_raw_peer(self, server):
        resp, _ = raw_exchange(server.address, b"SET a\x00b 1\nx")
        assert resp.startswith(b"ERR ")
        client = NetKVClient(server.address)
        assert client.keys() == []  # nothing leaked past the separator guard
        client.close()

    def test_keys_listing_stays_parseable(self, server):
        client = NetKVClient(server.address)
        for name in ("a", "b/c", "d-e_f.g"):
            client.set(name, b"v")
        assert client.keys() == ["a", "b/c", "d-e_f.g"]
        client.close()


class TestConcurrentClientsOneShard:
    def test_mixed_ops_and_errors_concurrently(self, server):
        """Many clients hammer one shard with interleaved hits, misses,
        and malformed frames; every well-formed op must stay correct."""
        errors = []

        def well_behaved(wid):
            try:
                c = NetKVClient(server.address)
                for i in range(40):
                    c.set(f"w{wid}/k{i}", f"{wid}:{i}".encode())
                    with pytest.raises(StoreError):
                        c.get(f"w{wid}/missing{i}")
                for i in range(40):
                    assert c.get(f"w{wid}/k{i}") == f"{wid}:{i}".encode()
                c.close()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        def rude(_wid):
            try:
                for _ in range(10):
                    raw_exchange(server.address, b"SET k oops\nXX", timeout=1.0)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=well_behaved, args=(w,)) for w in range(4)]
        threads += [threading.Thread(target=rude, args=(w,)) for w in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        probe = NetKVClient(server.address)
        assert len(probe) == 160
        probe.close()
