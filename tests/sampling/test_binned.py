"""Tests for the binned (CG Frame) sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.binned import BinnedSampler, BinSpec
from repro.sampling.points import Point

SPECS_3D = [BinSpec(0.0, 1.0, 4), BinSpec(0.0, 1.0, 4), BinSpec(0.0, 1.0, 4)]


def P(pid, *coords):
    return Point(id=pid, coords=np.array(coords, dtype=float))


class TestBinSpec:
    def test_bin_of_uniform(self):
        spec = BinSpec(0.0, 1.0, 4)
        np.testing.assert_array_equal(spec.bin_of(np.array([0.0, 0.3, 0.6, 0.99])), [0, 1, 2, 3])

    def test_clamping(self):
        spec = BinSpec(0.0, 1.0, 4)
        np.testing.assert_array_equal(spec.bin_of(np.array([-5.0, 5.0, 1.0])), [0, 3, 3])

    def test_validation(self):
        with pytest.raises(ValueError):
            BinSpec(0, 1, 0)
        with pytest.raises(ValueError):
            BinSpec(1, 1, 4)


class TestAddSelect:
    def test_add_and_count(self):
        s = BinnedSampler(SPECS_3D)
        s.add(P("a", 0.1, 0.1, 0.1))
        assert s.ncandidates() == 1

    def test_duplicate_ids_ignored(self):
        s = BinnedSampler(SPECS_3D)
        s.add(P("a", 0.1, 0.1, 0.1))
        s.add(P("a", 0.9, 0.9, 0.9))
        assert s.ncandidates() == 1

    def test_wrong_dim_rejected(self):
        s = BinnedSampler(SPECS_3D)
        with pytest.raises(ValueError):
            s.add(P("a", 0.1, 0.1))

    def test_select_consumes(self):
        s = BinnedSampler(SPECS_3D)
        for i in range(10):
            s.add(P(f"p{i}", 0.1, 0.1, 0.1))
        got = s.select(3)
        assert len(got) == 3
        assert s.ncandidates() == 7

    def test_select_empty(self):
        s = BinnedSampler(SPECS_3D)
        assert s.select(3) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            BinnedSampler(SPECS_3D).select(0)

    def test_needs_specs(self):
        with pytest.raises(ValueError):
            BinnedSampler([])

    def test_invalid_randomness(self):
        with pytest.raises(ValueError):
            BinnedSampler(SPECS_3D, randomness=1.5)


class TestImportanceSemantics:
    def test_prefers_unsimulated_bins(self):
        s = BinnedSampler(SPECS_3D, rng=np.random.default_rng(0))
        # 100 candidates in one bin, 1 candidate in another.
        for i in range(100):
            s.add(P(f"common{i}", 0.1, 0.1, 0.1))
        s.add(P("rare", 0.9, 0.9, 0.9))
        # First two selections: both bins have zero selections, so either
        # may be chosen, but after a few selections both bins must have
        # been visited — a count-proportional sampler would almost never
        # pick the rare bin.
        picked = [p.id for p in s.select(2)]
        assert "rare" in picked

    def test_balances_across_bins(self):
        s = BinnedSampler([BinSpec(0, 1, 2)], rng=np.random.default_rng(1))
        for i in range(50):
            s.add(P(f"lo{i}", 0.2))
            s.add(P(f"hi{i}", 0.8))
        s.select(20)
        lo_bin, hi_bin = s.selected_counts[0], s.selected_counts[1]
        assert lo_bin == hi_bin == 10  # perfectly alternating

    def test_randomness_one_is_uniform_over_candidates(self):
        rng = np.random.default_rng(2)
        s = BinnedSampler([BinSpec(0, 1, 2)], randomness=1.0, rng=rng)
        # 90% of candidates in bin 0: uniform sampling should mostly hit it.
        for i in range(900):
            s.add(P(f"lo{i}", 0.2))
        for i in range(100):
            s.add(P(f"hi{i}", 0.8))
        picks = s.select(100)
        lo = sum(1 for p in picks if p.coords[0] < 0.5)
        assert lo > 70  # ~90 expected; count-proportional, not bin-balanced

    def test_dimensions_treated_separately(self):
        # Two candidates equal in L2 terms but in different bins along
        # one axis must be distinguishable.
        s = BinnedSampler(SPECS_3D)
        a = P("a", 0.1, 0.5, 0.5)
        b = P("b", 0.9, 0.5, 0.5)
        assert s.flat_bin(a.coords) != s.flat_bin(b.coords)

    def test_coverage_grows_with_selection(self):
        rng = np.random.default_rng(3)
        s = BinnedSampler(SPECS_3D, rng=rng)
        for i in range(1000):
            s.add(Point(id=f"p{i}", coords=rng.random(3)))
        assert s.coverage() == 0.0
        s.select(64)
        assert s.coverage() == 1.0  # 4x4x4 bins, least-simulated-first


class TestScaling:
    def test_ingest_millions_is_linear_and_select_is_cheap(self):
        # Structural check for the 165x claim: ingest is O(1)/candidate
        # and selection never touches the candidate mass.
        import time

        rng = np.random.default_rng(4)
        s = BinnedSampler(SPECS_3D, rng=rng)
        coords = rng.random((200_000, 3))
        t0 = time.perf_counter()
        for i in range(200_000):
            s.add(Point(id=f"p{i}", coords=coords[i]))
        ingest = time.perf_counter() - t0
        t0 = time.perf_counter()
        s.select(100)
        select = time.perf_counter() - t0
        assert s.ncandidates() == 199_900
        assert select < ingest  # selection is not the bottleneck
        assert select < 1.0  # and absolutely cheap

    def test_occupancy_view(self):
        s = BinnedSampler([BinSpec(0, 1, 2)])
        s.add(P("a", 0.1))
        s.add(P("b", 0.9))
        s.add(P("c", 0.95))
        assert s.occupancy() == {0: 1, 1: 2}


class TestAddBatch:
    def test_points_form_equals_per_point_add(self):
        rng = np.random.default_rng(10)
        coords = rng.random((500, 3))
        points = [Point(id=f"p{i}", coords=coords[i]) for i in range(500)]
        a = BinnedSampler(SPECS_3D, rng=np.random.default_rng(0))
        b = BinnedSampler(SPECS_3D, rng=np.random.default_rng(0))
        for p in points:
            a.add(p)
        accepted = b.add_batch(points)
        assert accepted == 500
        assert a.occupancy() == b.occupancy()
        # Same RNG, same buckets: identical selection stream.
        assert [p.id for p in a.select(50)] == [p.id for p in b.select(50)]

    def test_array_form_equals_points_form(self):
        rng = np.random.default_rng(11)
        coords = rng.random((300, 3))
        ids = [f"p{i}" for i in range(300)]
        a = BinnedSampler(SPECS_3D, rng=np.random.default_rng(0))
        b = BinnedSampler(SPECS_3D, rng=np.random.default_rng(0))
        a.add_batch([Point(id=i, coords=c) for i, c in zip(ids, coords)])
        b.add_batch(ids=ids, coords=coords)
        assert a.occupancy() == b.occupancy()
        assert [p.id for p in a.select(30)] == [p.id for p in b.select(30)]

    def test_batch_dedup_counts_duplicates(self):
        s = BinnedSampler(SPECS_3D)
        s.add(P("a", 0.1, 0.1, 0.1))
        accepted = s.add_batch([
            P("a", 0.5, 0.5, 0.5),  # dup vs existing
            P("b", 0.2, 0.2, 0.2),
            P("b", 0.3, 0.3, 0.3),  # dup within the batch
        ])
        assert accepted == 1
        assert s.duplicates == 2
        assert s.ncandidates() == 2

    def test_batch_wrong_dim_rejected(self):
        s = BinnedSampler(SPECS_3D)
        with pytest.raises(ValueError):
            s.add_batch(ids=["a"], coords=np.zeros((1, 2)))

    def test_flat_bins_vectorized_matches_scalar(self):
        rng = np.random.default_rng(12)
        s = BinnedSampler(SPECS_3D)
        coords = rng.random((100, 3))
        flats = s.flat_bins(coords)
        for i in range(100):
            assert flats[i] == s.flat_bin(coords[i])

    def test_selected_points_materialize_coords(self):
        s = BinnedSampler(SPECS_3D)
        s.add_batch(ids=["a"], coords=np.array([[0.1, 0.2, 0.3]]))
        got = s.select(1)
        np.testing.assert_allclose(got[0].coords, [0.1, 0.2, 0.3])


@settings(max_examples=25, deadline=None)
@given(
    xs=st.lists(st.floats(0, 1), min_size=1, max_size=100),
    k=st.integers(1, 20),
)
def test_property_selection_counts_conserve(xs, k):
    s = BinnedSampler([BinSpec(0, 1, 8)], rng=np.random.default_rng(0))
    for i, x in enumerate(xs):
        s.add(P(f"p{i}", x))
    n_before = s.ncandidates()
    got = s.select(k)
    assert len(got) == min(k, n_before)
    assert s.ncandidates() == n_before - len(got)
    assert int(s.selected_counts.sum()) == len(got)


@settings(max_examples=25, deadline=None)
@given(xs=st.lists(st.floats(0, 1), min_size=10, max_size=100))
def test_property_least_simulated_invariant(xs):
    """With randomness=0, bin selection counts never differ by more than
    1 among bins that still have candidates."""
    s = BinnedSampler([BinSpec(0, 1, 4)], rng=np.random.default_rng(0))
    for i, x in enumerate(xs):
        s.add(P(f"p{i}", x))
    s.select(len(xs) // 2)
    occupied = set(s.occupancy())
    if occupied:
        counts = s.selected_counts[sorted(occupied)]
        assert counts.max() - counts.min() <= 1
