"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run
    Run the three-scale workflow for N rounds (optionally from a
    TOML/JSON config file) and print the WM counters.
campaign
    Simulate an allocation campaign (the paper ledger, a config-file
    ledger, or a small demo) and print Table-1-style output.
persistent
    Run a persistent campaign against the elastic allocation broker.
emulate
    Compare matcher policies on the paper's emulated job mix.
trace
    Replay an exported span trace (JSONL) into a per-stage latency
    breakdown, span events, and the critical path.
serve
    Run the campaign control plane: a long-running HTTP daemon that
    multiplexes submitted campaigns from many tenants onto one shared
    worker pool and one shared store (see OPERATIONS.md).
netkv
    Serve networked KV shards, or probe a ``netkv://`` cluster and
    print per-replica health.
chaos
    Run seeded chaos campaigns against the full coordination stack on
    virtual time, checking system invariants after every round; fuzz
    random fault schedules and shrink any failure to a minimal replay
    file, or re-execute a saved replay.
info
    Print the package version and subsystem inventory.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MuMMI reproduction: generalizable multiscale workflow coordination",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run the three-scale workflow")
    p_run.add_argument("--config", help="TOML/JSON config file")
    p_run.add_argument("--rounds", type=int, default=3)
    p_run.add_argument("--store", default="kv://4", help="store URL (fs://, taridx://, kv://)")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--trace", metavar="FILE",
                       help="enable span tracing and export the trace as JSONL")

    p_camp = sub.add_parser("campaign", help="simulate an allocation campaign")
    p_camp.add_argument("--config", help="TOML/JSON config file with a [campaign] section")
    p_camp.add_argument("--small", action="store_true", help="scaled-down demo ledger")
    p_camp.add_argument("--seed", type=int, default=2021)

    p_pers = sub.add_parser("persistent", help="persistent campaign over elastic allocations")
    p_pers.add_argument("--node-hours", type=float, default=1000.0)
    p_pers.add_argument("--seed", type=int, default=0)

    p_emu = sub.add_parser("emulate", help="matcher-policy emulation (the 670x study)")
    p_emu.add_argument("--scale", type=float, default=0.1,
                       help="fraction of the 4000-node/24k-job mix")

    p_trace = sub.add_parser("trace", help="analyze an exported span trace")
    p_trace.add_argument("file", help="JSONL trace (from `run --trace` or export_jsonl)")
    p_trace.add_argument("--occupancy", metavar="PREFIX",
                         help="also print a binned concurrency series for spans "
                              "with this name prefix (e.g. wm.cg_sim)")
    p_trace.add_argument("--bins", type=int, default=20,
                         help="number of time bins for --occupancy")

    p_serve = sub.add_parser(
        "serve", help="run the campaign control-plane daemon (OPERATIONS.md)")
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="bind port (0 picks a free port)")
    p_serve.add_argument("--store", default="kv://2",
                         help="shared store URL (kv://, netkv://, fs://, taridx://)")
    p_serve.add_argument("--pool-workers", type=int, default=4,
                         help="worker slots in the shared fair-share job pool")
    p_serve.add_argument("--max-campaigns-per-tenant", type=int, default=4)
    p_serve.add_argument("--max-campaigns", type=int, default=16,
                         help="active-campaign cap across all tenants")
    p_serve.add_argument("--default-rounds", type=int, default=4,
                         help="rounds when a submission omits 'rounds'")
    p_serve.add_argument("--share", action="append", default=[],
                         metavar="TENANT=WEIGHT",
                         help="fair-share weight for a tenant (repeatable)")
    p_serve.add_argument("--trace-capacity", type=int, default=65536,
                         help="daemon trace ring-buffer size (0 disables tracing)")

    p_netkv = sub.add_parser("netkv", help="networked KV cluster utilities")
    group = p_netkv.add_mutually_exclusive_group(required=True)
    group.add_argument("--serve", type=int, metavar="N",
                       help="start N shard servers and block until interrupted")
    group.add_argument("--health", metavar="URL",
                       help="probe a netkv:// cluster URL and print "
                            "per-replica health (exit 1 if any shard is down)")
    group.add_argument("--snapshot", metavar="URL",
                       help="ask every shard of a netkv:// cluster to write "
                            "a snapshot and compact its WAL (shards must "
                            "have been served with --persist)")
    group.add_argument("--migrate", metavar="URL",
                       help="move hash slots between shards of a live "
                            "netkv:// cluster (requires --slots and --to)")
    p_netkv.add_argument("--host", default="127.0.0.1",
                         help="bind address for --serve")
    p_netkv.add_argument("--max-conns", type=int, default=None,
                         help="per-shard concurrent-connection cap for "
                              "--serve (default: unlimited; see "
                              "OPERATIONS.md on fd budgeting)")
    p_netkv.add_argument("--persist", metavar="DIR", default=None,
                         help="durable shard state for --serve: one "
                              "WAL+snapshot subdirectory per shard under "
                              "DIR; a restart replays every acked write")
    p_netkv.add_argument("--no-fsync", action="store_true",
                         help="with --persist: skip the fsync batch on ack "
                              "(faster; drops the power-failure guarantee)")
    p_netkv.add_argument("--slots", metavar="A-B", default=None,
                         help="hash-slot range for --migrate, e.g. 0-4095 "
                              "(a single slot is just 'N')")
    p_netkv.add_argument("--to", dest="to_shard", type=int, default=None,
                         help="destination shard index for --migrate")

    p_chaos = sub.add_parser("chaos", help="seeded chaos campaigns with invariant checks")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--rounds", type=int, default=10,
                         help="WM rounds per campaign")
    p_chaos.add_argument("--campaigns", type=int, default=5,
                         help="number of random campaigns to fuzz")
    p_chaos.add_argument("--shards", type=int, default=4,
                         help="ChaosStore shard count")
    p_chaos.add_argument("--replication", type=int, default=2,
                         help="replicas per key")
    p_chaos.add_argument("--max-events", type=int, default=8,
                         help="max fault events per sampled schedule")
    p_chaos.add_argument("--replay", metavar="FILE",
                         help="re-run one saved reproducer instead of fuzzing")
    p_chaos.add_argument("--save-failing", metavar="FILE",
                         help="write the shrunk reproducer of the first failure here")
    p_chaos.add_argument("--report", metavar="FILE",
                         help="write the JSON invariant report(s) here")
    p_chaos.add_argument("--trace", metavar="FILE",
                         help="export the last campaign's span trace as JSONL")

    sub.add_parser("info", help="package and subsystem inventory")
    return parser


def _cmd_run(args) -> int:
    from repro import trace
    from repro.app.builder import build_application
    from repro.core.config import application_kwargs, load_config_file

    if args.config:
        kwargs = application_kwargs(load_config_file(args.config))
    else:
        kwargs = {"store_url": args.store, "seed": args.seed}
    tracer = trace.enable() if args.trace else None
    try:
        app = build_application(**kwargs)
        counters = app.run(nrounds=args.rounds)
    finally:
        if tracer is not None:
            nspans = tracer.export_jsonl(args.trace)
            trace.disable()
    print(f"ran {args.rounds} rounds:")
    for key, value in counters.items():
        print(f"  {key:22s} {value}")
    print(f"  continuum couplings updated {app.macro.coupling_version}x; "
          f"CG force field refined {app.forcefield.version}x")
    if tracer is not None:
        print(f"  wrote {nspans} spans to {args.trace} (analyze: repro trace {args.trace})")
    return 0


def _cmd_campaign(args) -> int:
    from repro.core.campaign import CampaignConfig, CampaignSimulator, RunSpec
    from repro.core.config import campaign_config, load_config_file

    if args.config:
        config = campaign_config(load_config_file(args.config))
    elif args.small:
        config = CampaignConfig(
            ledger=(RunSpec(50, 4, 2), RunSpec(100, 6, 1)), seed=args.seed
        )
    else:
        config = CampaignConfig(seed=args.seed)
    result = CampaignSimulator(config).run()
    print(f"{'#nodes':>8} {'wall':>6} {'#runs':>6} {'node-hours':>12}")
    for row in result.table1:
        print(f"{row['nnodes']:>8} {row['walltime_hours']:>5}h "
              f"{row['runs']:>6} {row['node_hours']:>12,.0f}")
    gpu = np.array([e.gpu_occupancy for e in result.profile_events])
    print(f"total: {result.total_node_hours():,.0f} node hours, "
          f"{result.counters['cg_sims']:,} CG sims, "
          f"{result.counters['aa_sims']:,} AA sims, "
          f"median GPU occupancy {np.median(gpu):.1%}")
    return 0


def _cmd_persistent(args) -> int:
    from repro.core.campaign import CampaignConfig
    from repro.core.persistent import AllocationBroker, PersistentCampaign

    broker = AllocationBroker(rng=np.random.default_rng(args.seed))
    campaign = PersistentCampaign(
        broker, node_hour_budget=args.node_hours,
        config=CampaignConfig(ledger=(), seed=args.seed),
    )
    result = campaign.run()
    print(f"{'cluster':>8} {'#nodes':>8} {'wall':>7} {'node-hours':>12}")
    for row in result.table1:
        print(f"{row['cluster']:>8} {row['nnodes']:>8} "
              f"{row['walltime_hours']:>6.1f}h {row['node_hours']:>12,.0f}")
    print(f"budget {args.node_hours:,.0f} node-hours met across "
          f"{result.counters['clusters_used']} clusters; "
          f"{result.counters['cg_sims']:,} CG sims persisted across allocations")
    return 0


def _cmd_emulate(args) -> int:
    from repro.sched.emulator import compare_policies

    results = compare_policies(scale=args.scale)
    low = results["low-id-first"]
    fast = results["first-match"]
    print(f"emulated machine: {low.nnodes} nodes, {low.njobs:,} jobs")
    for r in (low, fast):
        print(f"  {r.policy:>14s}: {r.vertices_visited:>14,} vertices, "
              f"{r.wall_seconds*1e3:8.1f} ms")
    print(f"traversal reduction: "
          f"{low.vertices_visited / fast.vertices_visited:,.0f}x "
          "(paper: 670x at full scale)")
    return 0


def _cmd_trace(args) -> int:
    from repro import trace

    rows = trace.load_trace(args.file)
    print(trace.render_breakdown(rows))
    if args.occupancy:
        series = trace.concurrency_series(rows, prefix=args.occupancy, nbins=args.bins)
        if not series:
            print(f"no spans match prefix {args.occupancy!r}")
        else:
            peak = max(p["active"] for p in series) or 1.0
            print(f"occupancy for {args.occupancy!r} ({args.bins} bins):")
            for p in series:
                bar = "#" * int(round(40 * p["active"] / peak))
                print(f"  {p['t0']:>12.4f}s {int(p['active']):>4d} {bar}")
    return 0


def _cmd_serve(args) -> int:
    import threading

    from repro.service import ControlPlaneServer, ServiceConfig

    shares = {}
    for spec in args.share:
        tenant, sep, weight = spec.partition("=")
        if not sep:
            print(f"--share needs TENANT=WEIGHT, got {spec!r}", file=sys.stderr)
            return 2
        try:
            shares[tenant] = float(weight)
        except ValueError:
            print(f"--share weight must be a number, got {weight!r}",
                  file=sys.stderr)
            return 2
    config = ServiceConfig(
        max_campaigns_per_tenant=args.max_campaigns_per_tenant,
        max_campaigns_total=args.max_campaigns,
        default_rounds=args.default_rounds,
        pool_workers=args.pool_workers,
        shares=shares,
    )
    server = ControlPlaneServer(store_url=args.store, host=args.host,
                                port=args.port, config=config,
                                trace_capacity=args.trace_capacity)
    server.start()
    print(f"control plane listening on {server.url}")
    print(f"store {args.store}, pool {config.pool_workers} worker(s), "
          f"quota {config.max_campaigns_per_tenant}/tenant "
          f"({config.max_campaigns_total} total)")
    print("press Ctrl-C to drain and stop")
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        print("control plane stopped")
    return 0


def _parse_slot_range(spec: str):
    """'A-B' (inclusive) or a single 'N' as a range of hash slots."""
    lo, sep, hi = spec.partition("-")
    try:
        a = int(lo)
        b = int(hi) if sep else a
    except ValueError:
        raise ValueError(f"bad slot range {spec!r}; expected A-B or N") from None
    if b < a:
        raise ValueError(f"bad slot range {spec!r}: end before start")
    return range(a, b + 1)


def _cmd_netkv(args) -> int:
    if args.serve is not None:
        import os
        import threading

        from repro.datastore.netkv import NetKVServer

        if args.serve < 1:
            print("--serve needs at least one shard", file=sys.stderr)
            return 2
        if args.max_conns is not None and args.max_conns < 1:
            print("--max-conns must be >= 1", file=sys.stderr)
            return 2
        servers = []
        for i in range(args.serve):
            if args.persist:
                from repro.datastore.aio import AsyncNetKVServer
                from repro.datastore.wal import DurabilityConfig

                server = AsyncNetKVServer(
                    host=args.host,
                    max_connections=args.max_conns,
                    persist_dir=os.path.join(args.persist, f"shard{i}"),
                    durability=DurabilityConfig(fsync=not args.no_fsync),
                )
            else:
                server = NetKVServer(host=args.host)
                server.max_connections = args.max_conns
            servers.append(server.start())
        url = "netkv://" + ",".join(f"{h}:{p}" for h, p in
                                    (s.address for s in servers))
        cap = "unlimited" if args.max_conns is None else str(args.max_conns)
        print(f"serving {args.serve} shard(s): {url} "
              f"(max {cap} connections/shard)")
        if args.persist:
            recovered = sum(len(s.wal.recovered) for s in servers)
            print(f"durable state under {args.persist} "
                  f"({recovered} key(s) recovered)")
        print("press Ctrl-C to stop")
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            pass
        finally:
            # stop() awaits in-flight serve tasks and joins the loop
            # thread, so acked writes are fully applied before the
            # process exits (see OPERATIONS.md).
            for s in servers:
                s.stop()
            print(f"stopped {len(servers)} shard(s)")
        return 0

    from repro.datastore.base import StoreError, open_store

    if args.snapshot is not None:
        try:
            store = open_store(args.snapshot)
        except StoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            infos = store.snapshot_all()
        except StoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        finally:
            store.close()
        for i, info in enumerate(infos):
            print(f"  shard {i}: {info.get('keys', '?')} key(s), "
                  f"wal {info.get('wal_bytes', 0)} B, "
                  f"{info.get('snapshots', 0)} snapshot(s)")
        print(f"snapshotted {len(infos)} shard(s)")
        return 0

    if args.migrate is not None:
        if args.slots is None or args.to_shard is None:
            print("--migrate requires --slots and --to", file=sys.stderr)
            return 2
        if "replication=" not in args.migrate:
            # Migration computes its copy and cleanup windows from the
            # replication factor; running with a silently defaulted
            # replication=1 against a replicated keyspace prunes live
            # replica copies. Make the operator state it.
            print("--migrate requires an explicit ?replication=N on the "
                  "URL (use the same value the cluster's writers use)",
                  file=sys.stderr)
            return 2
        try:
            slots = _parse_slot_range(args.slots)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            store = open_store(args.migrate)
        except StoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            result = store.migrate_slots(slots, args.to_shard)
        except StoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        finally:
            store.close()
        print(f"moved {result['slots']} slot(s) "
              f"({result['keys_moved']} key(s)) to shard {args.to_shard}; "
              f"routing epoch {result['epoch']}")
        return 0

    try:
        store = open_store(args.health)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        # Touch every shard so health reflects live probes, not optimism.
        try:
            store.keys("")
        except StoreError:
            pass
        health = store.replica_health()
    finally:
        store.close()
    print(f"replication {health['replication']}, "
          f"{health['up']}/{health['nshards']} shard(s) up, "
          f"{health['pending_repairs']} repair(s) pending")
    for shard in health["shards"]:
        print(f"  {shard['address']:>21s}  {'up' if shard['up'] else 'DOWN'}")
    return 0 if health["up"] == health["nshards"] else 1


def _cmd_chaos(args) -> int:
    import json

    from repro.chaos import (CampaignFuzzer, ChaosCampaign, load_replay,
                             save_replay)

    def show(report, label: str) -> None:
        status = "ok" if report.ok else "FAIL"
        print(f"  {label:>12s}: {status:4s} "
              f"rounds={report.rounds} spans={report.nspans} "
              f"faults={report.chaos.get('faults_applied', 0)} "
              f"violations={len(report.violations)}")
        for v in report.violations:
            print(f"      [{v.invariant}] round {v.round}: {v.detail}")

    if args.replay:
        schedule, config = load_replay(args.replay)
        campaign = ChaosCampaign(schedule, config)
        report = campaign.run()
        print(f"replay {args.replay}: {len(schedule)} fault event(s), "
              f"seed {config.seed}, {config.rounds} rounds")
        show(report, "replay")
        if args.trace:
            nspans = campaign.export_trace(args.trace)
            print(f"  wrote {nspans} spans to {args.trace}")
        if args.report:
            with open(args.report, "w", encoding="utf-8") as fh:
                fh.write(report.dumps())
                fh.write("\n")
            print(f"  wrote report to {args.report}")
        return 0 if report.ok else 1

    last_campaign = []

    def factory(schedule, config):
        campaign = ChaosCampaign(schedule, config)
        last_campaign[:] = [campaign]
        return campaign

    fuzzer = CampaignFuzzer(
        seed=args.seed, rounds=args.rounds, nshards=args.shards,
        replication=args.replication, max_events=args.max_events,
        campaign_factory=factory,
    )
    print(f"fuzzing {args.campaigns} campaign(s): seed {args.seed}, "
          f"{args.rounds} rounds, {args.shards} shards "
          f"(replication {args.replication})")
    result = fuzzer.run(args.campaigns)
    for i, report in enumerate(result.reports):
        show(report, f"campaign {i}")
    if args.trace and last_campaign:
        nspans = last_campaign[0].export_trace(args.trace)
        print(f"  wrote {nspans} spans to {args.trace}")
    if args.report:
        payload = [report.to_json() for report in result.reports]
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  wrote {len(payload)} report(s) to {args.report}")
    if result.ok:
        print(f"all {args.campaigns} campaign(s) green")
        return 0
    failure = result.failures[0]
    print(f"{len(result.failures)} failing campaign(s); first shrunk from "
          f"{len(failure.schedule)} to {len(failure.shrunk)} event(s) "
          f"in {failure.shrink_runs} extra run(s)")
    if args.save_failing:
        save_replay(args.save_failing, failure.shrunk, fuzzer._config())
        print(f"  wrote reproducer to {args.save_failing} "
              f"(re-run: repro chaos --replay {args.save_failing})")
    return 1


def _cmd_info(args) -> int:
    print(f"repro {__version__} — MuMMI (SC '21) reproduction")
    inventory = [
        ("datastore", "fs / taridx / kv / networked-kv backends"),
        ("sched", "Flux-like scheduler, Maestro-like adapters, emulator"),
        ("sampling", "farthest-point + binned samplers, ANN indexes"),
        ("ml", "NumPy MLP, triplet metric learning, 9-D patch encoder"),
        ("sims", "continuum DDFT / CG Martini-like / AA engines + mappings"),
        ("core", "Workflow Manager, feedback, campaign + persistent campaigns"),
        ("chaos", "seeded fault schedules, invariant suite, campaign fuzzer"),
        ("service", "multi-tenant control plane: HTTP API, fair shares"),
        ("app", "RAS-RAF application wiring"),
    ]
    for name, desc in inventory:
        print(f"  repro.{name:<10s} {desc}")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "campaign": _cmd_campaign,
    "persistent": _cmd_persistent,
    "emulate": _cmd_emulate,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "netkv": _cmd_netkv,
    "chaos": _cmd_chaos,
    "info": _cmd_info,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
