"""The RAS-RAF-membrane application (the "application" half of MuMMI).

§4: "we design MuMMI as comprising two parts — the application and the
coordination. The former defines the application scope ... what scales
are relevant, what codes and/or simulation tools to use, what ML
techniques are suitable, and how is the feedback performed?"

This package is that application half for the paper's study: the two
concrete feedback managers (CG→continuum RDF aggregation and AA→CG
secondary-structure refinement), the frame-encoding bin layout, and a
builder that assembles a complete three-scale workflow. Swapping this
package out — different feedback, encodings, or simulation engines —
is how the framework generalizes to other applications.
"""

from repro.app.feedback import CGToContinuumFeedback, AAToCGFeedback
from repro.app.builder import build_application, Application
from repro.app.routing import (
    TWO_QUEUES,
    FIVE_QUEUES,
    state_router,
    five_queue_router,
)

__all__ = [
    "CGToContinuumFeedback",
    "AAToCGFeedback",
    "build_application",
    "Application",
    "TWO_QUEUES",
    "FIVE_QUEUES",
    "state_router",
    "five_queue_router",
]
