"""Tests for the virtual clock and discrete-event loop."""

import pytest

from repro.util.clock import ClockError, Event, EventLoop, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.5).now == 5.5

    def test_advance_moves_forward(self):
        c = VirtualClock()
        assert c.advance(2.0) == 2.0
        assert c.advance(3.0) == 5.0
        assert c.now == 5.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ClockError):
            VirtualClock().advance(-1.0)

    def test_advance_to_absolute(self):
        c = VirtualClock(1.0)
        c.advance_to(10.0)
        assert c.now == 10.0

    def test_advance_to_rejects_backwards(self):
        c = VirtualClock(10.0)
        with pytest.raises(ClockError):
            c.advance_to(9.0)

    def test_advance_to_same_time_is_noop(self):
        c = VirtualClock(10.0)
        c.advance_to(10.0)
        assert c.now == 10.0


class TestEventLoop:
    def test_step_runs_callback_and_advances_clock(self):
        loop = EventLoop()
        hits = []
        loop.schedule_at(3.0, hits.append, "a")
        ev = loop.step()
        assert isinstance(ev, Event)
        assert hits == ["a"]
        assert loop.now == 3.0

    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule_at(5.0, order.append, 5)
        loop.schedule_at(1.0, order.append, 1)
        loop.schedule_at(3.0, order.append, 3)
        loop.run()
        assert order == [1, 3, 5]

    def test_same_time_events_run_in_insertion_order(self):
        loop = EventLoop()
        order = []
        for i in range(10):
            loop.schedule_at(1.0, order.append, i)
        loop.run()
        assert order == list(range(10))

    def test_schedule_in_is_relative(self):
        loop = EventLoop(VirtualClock(100.0))
        loop.schedule_in(5.0, lambda: None)
        assert loop.peek_time() == 105.0

    def test_cannot_schedule_in_past(self):
        loop = EventLoop(VirtualClock(10.0))
        with pytest.raises(ClockError):
            loop.schedule_at(5.0, lambda: None)

    def test_cancelled_events_are_skipped(self):
        loop = EventLoop()
        hits = []
        ev = loop.schedule_at(1.0, hits.append, "x")
        loop.schedule_at(2.0, hits.append, "y")
        ev.cancel()
        loop.run()
        assert hits == ["y"]

    def test_run_until_stops_at_boundary(self):
        loop = EventLoop()
        hits = []
        loop.schedule_at(1.0, hits.append, 1)
        loop.schedule_at(2.0, hits.append, 2)
        loop.schedule_at(3.0, hits.append, 3)
        n = loop.run_until(2.0)
        assert n == 2
        assert hits == [1, 2]
        assert loop.now == 2.0  # clock advanced even past last event

    def test_run_until_advances_clock_with_no_events(self):
        loop = EventLoop()
        loop.run_until(50.0)
        assert loop.now == 50.0

    def test_callbacks_can_schedule_more_events(self):
        loop = EventLoop()
        hits = []

        def recurring(n):
            hits.append(n)
            if n < 3:
                loop.schedule_in(1.0, recurring, n + 1)

        loop.schedule_at(0.0, recurring, 0)
        loop.run()
        assert hits == [0, 1, 2, 3]
        assert loop.now == 3.0

    def test_len_counts_live_events(self):
        loop = EventLoop()
        e1 = loop.schedule_at(1.0, lambda: None)
        loop.schedule_at(2.0, lambda: None)
        assert len(loop) == 2
        e1.cancel()
        assert len(loop) == 1

    def test_run_max_events_backstop(self):
        loop = EventLoop()

        def forever():
            loop.schedule_in(1.0, forever)

        loop.schedule_at(0.0, forever)
        with pytest.raises(RuntimeError):
            loop.run(max_events=10)

    def test_processed_counter(self):
        loop = EventLoop()
        for i in range(4):
            loop.schedule_at(float(i), lambda: None)
        loop.run()
        assert loop.processed == 4
