"""A networked KV server/client: the Redis substitute over real sockets.

The in-process :mod:`~repro.datastore.kvstore` models the cluster's
semantics; this module provides the same operations over actual TCP so
deployments where components live in different processes (the paper's
WM + thousands of simulation jobs) exercise a real wire protocol.

Protocol (text header + raw payload, one request per round trip)::

    request : <CMD> [args...] <payload_len>\\n<payload bytes>
    response: OK <len>\\n<payload>   |   NF\\n   |   ERR <message>\\n

Commands: PING, SET key, GET key, DEL key, KEYS prefix, RENAME src dst,
LEN, FLUSH, SHUTDOWN — plus the pipelined batch commands MGET, MSET,
and MDEL, which carry many keys (and values) in a single round trip::

    MGET <payload_len>\\n<keys joined by NUL>
        -> OK frame whose payload is, per key in order,
           "<n>\\n<value bytes>" (n = -1 and no bytes for a missing key)
    MSET <payload_len>\\n<repeated "<key> <n>\\n<value bytes>" blocks>
        -> OK frame whose payload is the decimal count stored
    MDEL <payload_len>\\n<keys joined by NUL>
        -> OK frame whose payload is one '1'/'0' flag byte per key
           ('1' = the key existed and was deleted)

A :class:`NetKVCluster` client routes keys over several servers with
the same hash-slot rule as the in-process cluster, and can replicate
every hash slot across ``replication`` consecutive shards: writes go
to every replica, reads fail over to the first healthy copy, and the
slice of the keyspace a shard owns only becomes unavailable when *all*
of its replicas are down. Per-shard health is tracked continuously
(fail-over marks a shard down; a cooldown-gated probe fails it back),
and a read-repair pass re-synchronizes replicas after a recovery.
Cross-shard renames are two-phase: the destination copy is fully
acknowledged before the source delete, so a shard death between the
phases can orphan a duplicate but never lose the value.

Transport resilience (§5.1 / §6 — the in-memory store is the campaign's
availability bottleneck):

- every client operation runs under a per-operation socket timeout and
  a capped exponential-backoff retry loop (:class:`TransportConfig`);
  a dead or flapping server surfaces as
  :class:`~repro.datastore.base.StoreUnavailable` instead of a hang;
- reads are buffered (:class:`_RecvBuffer`) on both sides instead of
  one ``recv()`` per header byte — see
  ``benchmarks/test_ext_netkv_transport.py`` for the measured win;
- the server validates frames defensively (length fields, header size,
  key charset) and *closes* a connection it can no longer trust rather
  than desyncing on the next request;
- a :class:`~repro.util.faults.NetworkFaultInjector` can be plugged
  into the server to rehearse drops, delays, half-closes, and garbage;
- every retry/timeout/reconnect and round-trip latency lands in a
  shared :class:`~repro.datastore.stats.TransportStats` that
  :func:`repro.core.telemetry.collect_telemetry` reports.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import socketserver
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro import trace
from repro.datastore.base import (
    DataStore,
    KeyNotFound,
    StoreError,
    StoreUnavailable,
    validate_key,
)
from repro.datastore.aio import (
    AsyncClientChannel,
    AsyncNetKVServer,
    LoopThread,
    WireProtocolError,
    _check_wire_key,
    _pack_items,
    _pack_values,
    _split_key_payload,
    _unpack_items,
    _unpack_values,
)
from repro.datastore.kvstore import _HASH_SLOTS, KVServer, key_slot
from repro.datastore.stats import TransportStats
from repro.util.faults import NetworkFaultInjector

__all__ = [
    "TransportConfig",
    "WireProtocolError",
    "NetKVServer",
    "ThreadedNetKVServer",
    "NetKVClient",
    "NetKVCluster",
    "NetKVStore",
]

_MAX_HEADER = 4096
_RECV_CHUNK = 65536


@dataclass(frozen=True)
class TransportConfig:
    """Client-side transport knobs (the ``[transport]`` config section).

    ``op_timeout`` bounds every socket send/recv; ``retries`` is how
    many times a failed operation is re-attempted on a fresh connection
    before :class:`StoreUnavailable`; the backoff between attempts is
    ``min(backoff_max, backoff_base * 2**attempt)`` scaled by a uniform
    jitter factor in ``[1 - jitter, 1 + jitter]`` so a thousand clients
    recovering from one server blip don't reconnect in lockstep.
    ``batch_keys`` caps how many keys one MGET/MSET/MDEL round trip
    carries (the pipeline depth); larger batches are chunked.
    ``route_refresh`` is how often (seconds) a cluster client re-reads
    the shared routing map published on the shards, which is what lets
    it observe slot migrations performed by *other* processes; ``0``
    disables polling (single-writer test setups).
    """

    op_timeout: float = 5.0
    connect_timeout: float = 2.0
    retries: int = 4
    backoff_base: float = 0.02
    backoff_max: float = 1.0
    jitter: float = 0.5
    max_payload: int = 256 * 1024 * 1024
    batch_keys: int = 512
    route_refresh: float = 1.0

    def __post_init__(self) -> None:
        if self.route_refresh < 0:
            raise ValueError("route_refresh must be >= 0")
        if self.op_timeout <= 0 or self.connect_timeout <= 0:
            raise ValueError("timeouts must be > 0")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < self.backoff_base:
            raise ValueError("need 0 <= backoff_base <= backoff_max")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.max_payload < 1:
            raise ValueError("max_payload must be >= 1")
        if self.batch_keys < 1:
            raise ValueError("batch_keys must be >= 1")


class _RecvBuffer:
    """Buffered reads over a socket: one ``recv()`` per chunk, not per byte.

    EOF raises :class:`ConnectionError` (retryable transport failure);
    an oversized header raises :class:`WireProtocolError` (the stream
    can no longer be framed).
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buf = bytearray()

    def _fill(self) -> None:
        chunk = self._sock.recv(_RECV_CHUNK)
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        self._buf.extend(chunk)

    def recv_line(self, limit: int = _MAX_HEADER) -> bytes:
        """Read up to and including a newline; return it without the newline."""
        while True:
            idx = self._buf.find(b"\n")
            if idx != -1:
                if idx > limit:
                    raise WireProtocolError(f"header exceeds {limit} bytes")
                line = bytes(self._buf[:idx])
                del self._buf[: idx + 1]
                return line
            if len(self._buf) > limit:
                raise WireProtocolError(f"header exceeds {limit} bytes")
            self._fill()

    def recv_exact(self, n: int) -> bytes:
        while len(self._buf) < n:
            self._fill()
        data = bytes(self._buf[:n])
        del self._buf[:n]
        return data


def _recv_line_unbuffered(sock: socket.socket) -> bytes:
    """The pre-hardening byte-at-a-time header read.

    Kept only as the baseline for the buffered-reader micro-benchmark
    (``benchmarks/test_ext_netkv_transport.py``); production paths use
    :class:`_RecvBuffer`.
    """
    buf = bytearray()
    while len(buf) < _MAX_HEADER:
        b = sock.recv(1)
        if not b:
            raise StoreError("connection closed mid-header")
        if b == b"\n":
            return bytes(buf)
        buf.extend(b)
    raise StoreError("header too long")


def _recv_exact_unbuffered(sock: socket.socket, n: int) -> bytes:
    """The pre-hardening payload read (benchmark baseline, see above)."""
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, _RECV_CHUNK))
        if not chunk:
            raise StoreError("connection closed mid-payload")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# Wire-protocol key validation and MGET/MSET/MDEL payload framing live
# in repro.datastore.aio (shared with the event-loop transport) and are
# re-exported above: _check_wire_key, _split_key_payload, _pack_values,
# _unpack_values, _pack_items, _unpack_items.


def _chunks(seq: List, size: int) -> List[List]:
    return [seq[i:i + size] for i in range(0, len(seq), size)]


class _Handler(socketserver.BaseRequestHandler):
    """One request-response exchange per connection round trip.

    Connections are persistent: the handler loops until the client
    disconnects, sends SHUTDOWN, or violates the protocol. A violated
    connection gets one ERR frame and is closed — after a malformed
    SET header the payload boundary is unknowable, and continuing would
    parse payload bytes as the next header (the desync bug).
    """

    def handle(self) -> None:  # noqa: C901 - a protocol switch is a switch
        server: "ThreadedNetKVServer" = self.server.owner  # type: ignore[attr-defined]
        sock = self.request
        injector = server.fault_injector
        if injector is not None and injector.connection_fate() == "drop":
            return  # close before reading anything
        server._register(sock)
        try:
            self._serve(server, sock, injector)
        finally:
            server._unregister(sock)

    def _serve(self, server: "ThreadedNetKVServer", sock: socket.socket,
               injector: Optional[NetworkFaultInjector]) -> None:
        buf = _RecvBuffer(sock)
        while True:
            try:
                header = buf.recv_line()
            except (ConnectionError, OSError):
                return  # client went away
            except WireProtocolError as exc:
                self._send_err(sock, str(exc))
                return
            if not header:
                # A blank line cannot start a request; before the fix this
                # `continue`d and spun forever on a client sending "\n"s.
                self._send_err(sock, "empty header")
                return
            with trace.span("netkv.handle") as sp:
                if injector is not None:
                    fate = injector.request_fate()
                    if fate == "delay":
                        seconds = injector.delay_duration()
                        if sp:
                            sp.event("fault", fate="delay", seconds=seconds)
                        time.sleep(seconds)
                    elif fate == "close":
                        if sp:
                            sp.event("fault", fate="close")
                        return
                    elif fate == "garbage":
                        if sp:
                            sp.event("fault", fate="garbage")
                        try:
                            sock.sendall(injector.garbage_payload())
                        except OSError:
                            pass
                        return
                try:
                    parts = header.decode("utf-8").split()
                except UnicodeDecodeError:
                    self._send_err(sock, "header is not UTF-8")
                    return
                cmd, args = parts[0].upper(), parts[1:]
                if sp:
                    sp.set(cmd=cmd)
                try:
                    payload = b""
                    if cmd in ("SET", "MGET", "MSET", "MSETNX", "MDEL"):
                        payload, args = self._read_payload(buf, cmd, args, server)
                    response = self._dispatch(server, cmd, args, payload)
                except KeyNotFound:
                    sock.sendall(b"NF\n")
                    continue
                except WireProtocolError as exc:
                    # Framing is broken (bad length field, oversized payload):
                    # the bytes that follow cannot be trusted as a header.
                    self._send_err(sock, str(exc))
                    return
                except (ConnectionError, OSError):
                    return
                except Exception as exc:  # application errors become ERR frames
                    msg = str(exc).replace("\n", " ")[:500]
                    sock.sendall(f"ERR {msg}\n".encode("utf-8"))
                    continue
                if response is None:
                    return  # SHUTDOWN
                sock.sendall(f"OK {len(response)}\n".encode("utf-8") + response)

    @staticmethod
    def _send_err(sock: socket.socket, msg: str) -> None:
        try:
            sock.sendall(f"ERR {msg}\n".encode("utf-8", "replace"))
        except OSError:
            pass

    @staticmethod
    def _read_payload(buf: _RecvBuffer, cmd: str, args: List[str],
                      server: "ThreadedNetKVServer") -> Tuple[bytes, List[str]]:
        """Read a payload-carrying command's body (last arg = byte length),
        or raise :class:`WireProtocolError`."""
        min_args = 2 if cmd == "SET" else 1  # SET also carries its key
        if len(args) < min_args:
            raise WireProtocolError(f"{cmd} header is missing arguments")
        try:
            length = int(args[-1])
        except ValueError:
            raise WireProtocolError(
                f"{cmd} length is not an integer: {args[-1]!r}") from None
        if length < 0 or length > server.max_payload:
            raise WireProtocolError(f"{cmd} length out of range: {length}")
        return buf.recv_exact(length), args[:-1]

    @staticmethod
    def _dispatch(server: "ThreadedNetKVServer", cmd: str, args: List[str],
                  payload: bytes) -> Optional[bytes]:
        store = server.backend
        with server.lock:
            if cmd == "PING":
                return b"PONG"
            if cmd == "SET":
                store.set(_check_wire_key(args[0]), payload)
                return b""
            if cmd == "GET":
                return store.get(args[0])
            if cmd == "DEL":
                store.delete(args[0])
                return b""
            if cmd == "KEYS":
                prefix = args[0] if args else ""
                return "\x00".join(sorted(store.scan(prefix))).encode("utf-8")
            if cmd == "RENAME":
                store.rename(args[0], _check_wire_key(args[1]))
                return b""
            if cmd == "MGET":
                return _pack_values(store.mget(_split_key_payload(payload)))
            if cmd == "MSET":
                n = store.mset(_unpack_items(payload, server.max_payload))
                return str(n).encode("utf-8")
            if cmd == "MSETNX":
                flags = store.msetnx(_unpack_items(payload, server.max_payload))
                return b"".join(b"1" if f else b"0" for f in flags)
            if cmd == "MDEL":
                flags = store.mdelete(_split_key_payload(payload))
                return b"".join(b"1" if f else b"0" for f in flags)
            if cmd == "LEN":
                return str(len(store)).encode("utf-8")
            if cmd == "SNAPSHOT":
                # Only the event-loop server carries a WAL; the threaded
                # baseline answers honestly instead of pretending.
                raise StoreError("shard has no persistence configured")
            if cmd == "FLUSH":
                store.flush()
                return b""
            if cmd == "SHUTDOWN":
                threading.Thread(target=server.stop, daemon=True).start()
                return None
            raise StoreError(f"unknown command {cmd!r}")


class _TCPServer(socketserver.ThreadingTCPServer):
    # Restarting a shard on its old port must not fail on TIME_WAIT —
    # the resilience tests stop and revive servers at the same address.
    allow_reuse_address = True
    daemon_threads = True

    def process_request(self, request, client_address):
        # ThreadingMixIn only tracks (and joins) non-daemon handler
        # threads, so with daemon_threads the stock server_close() joins
        # nothing: `repro netkv --serve` could exit mid-request, dropping
        # an acked write on the floor. Spawn the handler ourselves and
        # register the thread with the owning NetKVServer so stop() can
        # join it after severing its socket.
        thread = threading.Thread(
            target=self.process_request_thread,
            args=(request, client_address), daemon=True)
        owner = getattr(self, "owner", None)
        if owner is not None:
            owner._track_handler(thread)
        thread.start()


class ThreadedNetKVServer:
    """The thread-per-connection shard server (pre-event-loop).

    Kept as the comparison baseline for the async transport benchmarks
    (``benchmarks/test_ext_netkv_async.py``) and as a fallback; the
    production server is the event-loop :class:`NetKVServer` facade
    below. ``fault_injector`` plugs a
    :class:`~repro.util.faults.NetworkFaultInjector` into the accept
    and request paths for degraded-network testing.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 fault_injector: Optional[NetworkFaultInjector] = None,
                 max_payload: int = 256 * 1024 * 1024) -> None:
        self.backend = KVServer()
        self.lock = threading.Lock()
        self.fault_injector = fault_injector
        self.max_payload = max_payload
        self._tcp = _TCPServer((host, port), _Handler, bind_and_activate=True)
        self._tcp.owner = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._conns: set = set()
        self._conn_lock = threading.Lock()
        self._handlers: set = set()

    def _track_handler(self, thread: threading.Thread) -> None:
        with self._conn_lock:
            self._handlers = {t for t in self._handlers if t.is_alive()}
            self._handlers.add(thread)

    def _register(self, sock: socket.socket) -> None:
        with self._conn_lock:
            self._conns.add(sock)

    def _unregister(self, sock: socket.socket) -> None:
        with self._conn_lock:
            self._conns.discard(sock)

    @property
    def address(self) -> Tuple[str, int]:
        return self._tcp.server_address  # type: ignore[return-value]

    def start(self) -> "ThreadedNetKVServer":
        self._thread = threading.Thread(target=self._tcp.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self, join_timeout: float = 5.0) -> None:
        """Stop listening, sever live connections, and join the threads.

        Without the severing step, handler threads on established
        connections would keep serving a "stopped" shard — a zombie the
        restart/resilience semantics (and tests) cannot tolerate. And
        without the join, ``stop()`` could return while a handler was
        still inside ``_dispatch`` holding the backend lock — the
        ``repro netkv --serve`` Ctrl-C path used to exit the process
        mid-request that way. Handler sockets are closed first, so the
        joins observe prompt exits; ``join_timeout`` bounds the wait per
        thread regardless.
        """
        self._tcp.shutdown()
        self._tcp.server_close()
        with self._conn_lock:
            conns = list(self._conns)
            self._conns.clear()
            handlers = list(self._handlers)
            self._handlers.clear()
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        for thread in handlers:
            if thread is not threading.current_thread():
                thread.join(timeout=join_timeout)
        serve_thread = self._thread
        if serve_thread is not None and serve_thread is not threading.current_thread():
            serve_thread.join(timeout=join_timeout)
            self._thread = None

    def __enter__(self) -> "ThreadedNetKVServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class NetKVServer(AsyncNetKVServer):
    """One networked shard wrapping an in-memory :class:`KVServer`.

    Since the event-loop rewrite this is a thin facade over
    :class:`repro.datastore.aio.AsyncNetKVServer`: one dedicated loop
    thread per shard, one protocol object (not one thread) per
    connection, zero-copy buffered framing, and write-queue
    backpressure — same wire protocol, same error discipline, same
    ``start()/stop()/address`` surface as the threaded server it
    replaced (kept as :class:`ThreadedNetKVServer` for benchmarks).

    ``fault_injector`` plugs a
    :class:`~repro.util.faults.NetworkFaultInjector` into the accept
    and request paths for degraded-network testing; ``max_connections``
    bounds concurrently served connections (see OPERATIONS.md).
    """


class NetKVClient:
    """A connection to one shard with timeouts, reconnect, and retries.

    The connection is opened lazily and re-opened transparently: any
    timeout, connection failure, or malformed response closes the
    socket, waits out a jittered backoff, and re-attempts on a fresh
    connection until the retry budget is spent, at which point
    :class:`StoreUnavailable` is raised. Application-level outcomes
    (``NF`` → :class:`KeyNotFound`, ``ERR`` → :class:`StoreError`) are
    never retried.

    Retries make every operation at-least-once: SET/GET/RENAME are
    idempotent, but a DEL whose response was lost can raise
    :class:`KeyNotFound` on the re-attempt even though the key was
    removed (see DESIGN.md, "Transport failure semantics").
    """

    def __init__(self, address: Tuple[str, int], timeout: Optional[float] = None,
                 config: Optional[TransportConfig] = None,
                 stats: Optional[TransportStats] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.address = address
        cfg = config or TransportConfig()
        if timeout is not None:  # back-compat with the old timeout-only ctor
            cfg = dataclasses.replace(cfg, op_timeout=float(timeout))
        self.config = cfg
        self.stats = stats if stats is not None else TransportStats()
        self._rng = rng if rng is not None else np.random.default_rng()
        self._sleep = time.sleep  # swappable in tests
        self._sock: Optional[socket.socket] = None
        self._buf: Optional[_RecvBuffer] = None
        self._ever_connected = False

    # --- connection management -------------------------------------------

    def _ensure_connected(self) -> _RecvBuffer:
        if self._sock is None:
            sock = socket.create_connection(self.address,
                                            timeout=self.config.connect_timeout)
            sock.settimeout(self.config.op_timeout)
            self._sock = sock
            self._buf = _RecvBuffer(sock)
            if self._ever_connected:
                self.stats.note_reconnect()
            self._ever_connected = True
        assert self._buf is not None
        return self._buf

    def _drop_connection(self) -> None:
        """Close a socket we no longer trust; never reuse it."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._buf = None

    def close(self) -> None:
        self._drop_connection()

    def _backoff(self, attempt: int) -> None:
        base = min(self.config.backoff_max,
                   self.config.backoff_base * (2.0 ** attempt))
        if base <= 0:
            return
        spread = self.config.jitter
        factor = 1.0 if spread == 0 else (1.0 - spread) + 2.0 * spread * float(self._rng.random())
        self._sleep(base * factor)

    # --- the request loop -------------------------------------------------

    def _roundtrip(self, header: str, payload: bytes = b"") -> bytes:
        wire = header.encode("utf-8") + b"\n" + payload
        op = header.split(" ", 1)[0]
        attempts = self.config.retries + 1
        last_exc: Optional[BaseException] = None
        for attempt in range(attempts):
            t0 = time.perf_counter()
            try:
                buf = self._ensure_connected()
                self.stats.note_request(len(wire))
                self._sock.sendall(wire)  # type: ignore[union-attr]
                return self._read_response(buf, header, t0)
            except (socket.timeout, TimeoutError) as exc:
                last_exc = exc
                self._drop_connection()
                self.stats.note_retry(timed_out=True)
                trace.event("retry", kind="timeout", op=op, attempt=attempt)
            except WireProtocolError as exc:
                # The peer sent something unframeable — desynced or
                # garbage-injected. The connection is dead to us.
                last_exc = exc
                self._drop_connection()
                self.stats.note_retry(timed_out=False, protocol=True)
                trace.event("retry", kind="protocol", op=op, attempt=attempt)
            except (ConnectionError, OSError) as exc:
                last_exc = exc
                self._drop_connection()
                self.stats.note_retry(timed_out=False)
                trace.event("retry", kind="connection", op=op, attempt=attempt)
            if attempt < attempts - 1:
                self._backoff(attempt)
        self.stats.note_exhausted()
        trace.event("exhausted", op=op, attempts=attempts)
        raise StoreUnavailable(
            f"{header.split()[0]} against {self.address[0]}:{self.address[1]} "
            f"failed after {attempts} attempt(s): {last_exc}"
        ) from last_exc

    def _read_response(self, buf: _RecvBuffer, header: str, t0: float) -> bytes:
        status = buf.recv_line().decode("utf-8", "replace")
        if status.startswith("OK "):
            try:
                n = int(status[3:])
            except ValueError:
                raise WireProtocolError(f"malformed OK length: {status!r}") from None
            if n < 0 or n > self.config.max_payload:
                raise WireProtocolError(f"OK length out of range: {n}")
            body = buf.recv_exact(n)
            self.stats.note_response(n, time.perf_counter() - t0)
            return body
        if status == "NF":
            self.stats.note_response(0, time.perf_counter() - t0)
            raise KeyNotFound(header.split()[1] if " " in header else "?")
        if status.startswith("ERR "):
            self.stats.note_response(0, time.perf_counter() - t0)
            raise StoreError(status[4:])
        raise WireProtocolError(f"unparseable response {status!r}")

    # --- operations -------------------------------------------------------

    def ping(self) -> bool:
        return self._roundtrip("PING") == b"PONG"

    def set(self, key: str, value: bytes) -> None:
        self._roundtrip(f"SET {_check_wire_key(key)} {len(value)}", value)

    def get(self, key: str) -> bytes:
        return self._roundtrip(f"GET {key}")

    def delete(self, key: str) -> None:
        self._roundtrip(f"DEL {key}")

    def keys(self, prefix: str = "") -> List[str]:
        raw = self._roundtrip(f"KEYS {prefix}" if prefix else "KEYS")
        return raw.decode("utf-8").split("\x00") if raw else []

    def rename(self, src: str, dst: str) -> None:
        self._roundtrip(f"RENAME {src} {_check_wire_key(dst)}")

    # --- pipelined batch operations (one round trip per call) -------------

    def mget(self, keys: List[str]) -> List[Optional[bytes]]:
        """Values for ``keys`` in order; None where the key is missing."""
        if not keys:
            return []
        payload = "\x00".join(_check_wire_key(k) for k in keys).encode("utf-8")
        raw = self._roundtrip(f"MGET {len(payload)}", payload)
        values = _unpack_values(raw, len(keys))
        self.stats.note_batch(len(keys))
        return values

    def mset(self, items: List[Tuple[str, bytes]]) -> int:
        if not items:
            return 0
        payload = _pack_items(items)
        raw = self._roundtrip(f"MSET {len(payload)}", payload)
        try:
            n = int(raw)
        except ValueError:
            raise WireProtocolError(f"malformed MSET response: {raw!r}") from None
        self.stats.note_batch(len(items))
        return n

    def msetnx(self, items: List[Tuple[str, bytes]]) -> List[bool]:
        """Set each pair only where the key is absent; per-key flags say
        which were stored (the migration copier's no-overwrite write)."""
        if not items:
            return []
        payload = _pack_items(items)
        raw = self._roundtrip(f"MSETNX {len(payload)}", payload)
        if len(raw) != len(items) or raw.strip(b"01"):
            raise WireProtocolError(f"malformed MSETNX response: {raw[:64]!r}")
        self.stats.note_batch(len(items))
        return [b == 0x31 for b in raw]

    def mdelete(self, keys: List[str]) -> List[bool]:
        """Delete ``keys``; per-key flags say which existed."""
        if not keys:
            return []
        payload = "\x00".join(_check_wire_key(k) for k in keys).encode("utf-8")
        raw = self._roundtrip(f"MDEL {len(payload)}", payload)
        if len(raw) != len(keys) or raw.strip(b"01"):
            raise WireProtocolError(f"malformed MDEL response: {raw[:64]!r}")
        self.stats.note_batch(len(keys))
        return [b == 0x31 for b in raw]

    def snapshot(self) -> Dict[str, Any]:
        """Ask the shard to write a snapshot and compact its WAL;
        returns the shard's persistence counters."""
        return json.loads(self._roundtrip("SNAPSHOT").decode("utf-8"))

    def __len__(self) -> int:
        return int(self._roundtrip("LEN"))

    def shutdown_server(self) -> None:
        try:
            self._ensure_connected()
            self._sock.sendall(b"SHUTDOWN\n")  # type: ignore[union-attr]
        except OSError:
            pass
        self.close()


# Internal namespace for deletion markers. A delete that cannot reach
# every replica leaves a tombstone on the replicas it did reach, so the
# anti-entropy pass can tell "deleted while you were down" apart from
# "written while you were down" and does not resurrect tagged keys.
_TOMB = "__repro_tomb__/"

# Reserved key holding the cluster's routing map (slot overrides plus
# in-flight migration state), written to *every* shard so any client —
# including one in a different process — can discover placement changes.
# Durable shards persist it through their WAL, so the map survives a
# full cluster restart.  Excluded from keys()/repair/migration sweeps.
_ROUTE_KEY = "__repro_route__"


class _ShardState:
    """Health record for one shard; mutated under the cluster's health lock."""

    __slots__ = ("up", "down_since", "last_attempt")

    def __init__(self) -> None:
        self.up = True
        self.down_since = 0.0
        self.last_attempt = 0.0


class _ClientPool:
    """Bounded pool of connections to one shard (threaded transport).

    Feedback managers fetch through thread pools, so several threads
    may talk to the same shard at once; the pool lets each borrow its
    own connection instead of serializing on one socket. Connections
    that failed mid-operation are discarded, never reused.

    Total outstanding connections are capped by ``max_size`` with a
    bounded semaphore: a checkout that misses the idle list *waits for
    a permit* instead of opening a fresh socket per concurrent miss —
    the old behavior churned one short-lived connection per miss under
    bursty fan-out, defeating the pool entirely.
    """

    def __init__(self, address: Tuple[str, int], config: TransportConfig,
                 stats: TransportStats, spawn_rng, max_idle: int = 4,
                 max_size: int = 8) -> None:
        if max_size < max_idle:
            raise StoreError("pool max_size must be >= max_idle")
        self.address = address
        self._config = config
        self._stats = stats
        self._spawn_rng = spawn_rng
        self._max_idle = max_idle
        self._max_size = max_size
        self._permits = threading.BoundedSemaphore(max_size)
        self._idle: List[NetKVClient] = []
        self._lock = threading.Lock()
        self.created = 0  # lifetime connections opened (regression hook)

    def acquire(self) -> NetKVClient:
        self._permits.acquire()
        with self._lock:
            if self._idle:
                return self._idle.pop()
            self.created += 1
        return NetKVClient(self.address, config=self._config,
                           stats=self._stats, rng=self._spawn_rng())

    def release(self, client: NetKVClient, discard: bool = False) -> None:
        try:
            if not discard:
                with self._lock:
                    if len(self._idle) < self._max_idle:
                        self._idle.append(client)
                        return
            client.close()
        finally:
            try:
                self._permits.release()
            except ValueError:
                pass  # release without acquire: never pooled, don't wedge

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for client in idle:
            client.close()


class _ChannelPool:
    """Pool facade over one shared coalescing channel per shard.

    The async transport multiplexes every borrower onto a single
    :class:`~repro.datastore.aio.AsyncClientChannel` — concurrent
    checkouts become queue depth (and fold into batch frames) instead
    of parallel sockets. ``release(discard=True)`` is a no-op because
    the channel already drops its connection internally on transport
    failure; the acquire/release surface only exists so the cluster's
    ``_shard_op`` works against either transport.
    """

    def __init__(self, address: Tuple[str, int], config: TransportConfig,
                 stats: TransportStats, spawn_rng, loop_provider) -> None:
        self.address = address
        self._channel = AsyncClientChannel(
            address, config, stats=stats, loop_thread=loop_provider,
            rng=spawn_rng())

    def acquire(self) -> AsyncClientChannel:
        return self._channel

    def release(self, client, discard: bool = False) -> None:
        pass

    def close(self) -> None:
        self._channel.close()


class NetKVCluster:
    """Replicated, slot-routed client over several networked shards.

    Every hash slot lives on ``replication`` consecutive shards (its
    primary plus the following ``replication - 1``, wrapping around).
    Writes go to every healthy replica and succeed with at least one
    acknowledgement; reads try replicas in placement order and fail
    over past dead copies, repairing stale replicas with the value they
    missed. A slot's slice of the keyspace raises
    :class:`StoreUnavailable` only when *all* of its replicas are down.

    Per-shard health is tracked continuously: an operation that
    exhausts its retry budget marks the shard down, after which it is
    skipped until ``probe_cooldown`` elapses; then a single half-open
    probe (or a last-ditch attempt when no other replica is left) may
    fail it back. A recovered shard is queued for an anti-entropy
    repair pass — run automatically at the next operation — that pulls
    the writes it missed, pushes acked writes only it holds, and prunes
    keys its peers saw deleted (tombstones, see ``_TOMB``).

    All per-shard clients share one :class:`TransportStats` and one
    :class:`TransportConfig`, so the cluster reports transport health
    for the store as a whole. With ``replication=1`` the behavior is
    exactly the old single-copy cluster.
    """

    def __init__(self, addresses: List[Tuple[str, int]],
                 config: Optional[TransportConfig] = None,
                 rng: Optional[np.random.Generator] = None,
                 replication: int = 1,
                 probe_cooldown: float = 0.25,
                 transport: str = "async",
                 route_refresh: Optional[float] = None) -> None:
        if not addresses:
            raise StoreError("cluster needs at least one server address")
        if replication < 1:
            raise StoreError("replication must be >= 1")
        if probe_cooldown < 0:
            raise StoreError("probe_cooldown must be >= 0")
        if transport not in ("async", "threaded"):
            raise StoreError(f"unknown transport {transport!r} "
                             "(expected 'async' or 'threaded')")
        self.addresses = [tuple(a) for a in addresses]
        self.config = config or TransportConfig()
        self.stats = TransportStats()
        self.replication = min(int(replication), len(self.addresses))
        self.probe_cooldown = float(probe_cooldown)
        self.transport = transport
        self._rng = rng if rng is not None else np.random.default_rng()
        self._rng_lock = threading.Lock()
        # One event loop per cluster, created lazily on the first op so
        # never-connected clusters (routing-only tests) stay threadless.
        self._loop_thread: Optional[LoopThread] = None
        self._loop_lock = threading.Lock()
        if transport == "async":
            self._pools: List = [
                _ChannelPool(addr, self.config, self.stats, self._spawn_rng,
                             self._get_loop)
                for addr in self.addresses
            ]
        else:
            self._pools = [
                _ClientPool(addr, self.config, self.stats, self._spawn_rng)
                for addr in self.addresses
            ]
        # Probes must answer fast even when the shard is dead: one
        # attempt, no retry ladder.
        probe_cfg = dataclasses.replace(self.config, retries=0)
        self._probers = [
            NetKVClient(addr, config=probe_cfg, stats=self.stats,
                        rng=self._spawn_rng())
            for addr in self.addresses
        ]
        self._states = [_ShardState() for _ in self.addresses]
        self._health_lock = threading.Lock()
        self._repair_pending: set = set()
        self._repairing = False
        self._repair_gate = threading.Lock()
        self._tombstones = False
        # Slot routing: by default slot s lives on shard s % n; a
        # finished migration records an override. While a slot is in
        # ``_migrating`` writes go to both windows and reads try the
        # destination first; while it is in ``_draining`` the old copies
        # have not been pruned yet and deletes tombstone both windows.
        # ``_routing_epoch`` bumps on every placement change so
        # operators (and tests) can observe cutovers.
        #
        # The map is not private to this instance: migrations publish
        # it to every shard under ``_ROUTE_KEY`` and every instance
        # re-reads it at most every ``route_refresh`` seconds, so a
        # migration run from another process (the OPERATIONS.md
        # ``repro netkv --migrate`` flow) is observed by long-running
        # daemons before the old copies are cleaned up.
        self._route_lock = threading.Lock()
        self._slot_owner: Dict[int, int] = {}
        self._migrating: Dict[int, int] = {}
        self._draining: Dict[int, int] = {}
        self._routing_epoch = 0
        self.route_refresh = (self.config.route_refresh
                              if route_refresh is None
                              else float(route_refresh))
        if self.route_refresh < 0:
            raise StoreError("route_refresh must be >= 0")
        self._now = time.monotonic  # swappable in tests
        # First poll happens one interval after construction: a fresh
        # client has the same bounded staleness as a running one, and
        # quick one-shot flows (health checks, unit tests) don't pay a
        # per-shard GET they will never need.
        self._route_last = self._now()
        self._route_frozen = False  # True while *we* migrate
        # Dedicated single-connection clients, one per shard: kept for
        # introspection (len(), direct shard access) and older callers.
        self.clients = [
            NetKVClient(addr, config=self.config, stats=self.stats,
                        rng=self._spawn_rng())
            for addr in self.addresses
        ]

    def _spawn_rng(self) -> np.random.Generator:
        # One Generator per client: numpy Generators are not thread-safe.
        with self._rng_lock:
            seed = int(self._rng.integers(0, 2 ** 63))
        return np.random.default_rng(seed)

    def _get_loop(self) -> LoopThread:
        with self._loop_lock:
            if self._loop_thread is None or not self._loop_thread.is_alive():
                self._loop_thread = LoopThread(name="netkv-cluster")
            return self._loop_thread

    # --- placement and health --------------------------------------------

    def _primary_for_slot(self, slot: int) -> int:
        """Owning shard of a hash slot (caller holds ``_route_lock``)."""
        return self._slot_owner.get(slot, slot % len(self._pools))

    def _window(self, primary: int) -> List[int]:
        n = len(self._pools)
        return [(primary + r) % n for r in range(self.replication)]

    def _replicas_for(self, key: str) -> List[int]:
        with self._route_lock:
            primary = self._primary_for_slot(key_slot(key))
        return self._window(primary)

    def _placement(self, key: str) -> Tuple[
            List[int], Optional[List[int]], Optional[List[int]]]:
        """(current window, migration-target window or None, drain
        window or None — the pre-cutover window of a slot whose old
        copies have not been pruned yet)."""
        slot = key_slot(key)
        with self._route_lock:
            primary = self._primary_for_slot(slot)
            dst = self._migrating.get(slot)
            src = self._draining.get(slot)
        window = self._window(primary)
        if dst is not None and dst != primary:
            return window, self._window(dst), None
        if src is not None and src != primary:
            return window, None, self._window(src)
        return window, None, None

    def _migrating_slots(self) -> Optional[Dict[int, int]]:
        """Snapshot of slots needing special handling (mid-migration or
        draining), or None (the common case, so batch routing pays one
        lock acquire and no copies).  Batch ops detour these keys
        through the single-key paths, which know both windows."""
        with self._route_lock:
            if not self._migrating and not self._draining:
                return None
            out = dict(self._draining)
            out.update(self._migrating)
            return out

    # --- shared routing map ----------------------------------------------

    def _route_doc(self) -> bytes:
        with self._route_lock:
            doc = {
                "epoch": self._routing_epoch,
                "owner": {str(s): d for s, d in self._slot_owner.items()},
                "migrating": {str(s): d
                              for s, d in self._migrating.items()},
                "draining": {str(s): d for s, d in self._draining.items()},
            }
        return json.dumps(doc, sort_keys=True).encode("utf-8")

    def _publish_route(self, best_effort: bool = False) -> None:
        """Write the routing map to every reachable shard.

        Written to all shards (not a replica window) because the map
        must be discoverable by a client that can only reach a subset.
        With ``best_effort=False`` at least one shard must ack — a
        migration that nobody else can observe must not proceed to
        prune source copies.
        """
        doc = self._route_doc()
        acked = 0
        last_exc: Optional[StoreError] = None
        for idx in range(len(self._pools)):
            try:
                self._shard_op(idx, lambda c, v=doc: c.set(_ROUTE_KEY, v))
                acked += 1
            except StoreError as exc:
                last_exc = exc
        if not acked and not best_effort:
            raise StoreUnavailable(
                "no shard accepted the routing map") from last_exc

    def _maybe_refresh_route(self) -> None:
        """Time-gated poll of the shared map, called at the top of every
        public operation (like ``_maybe_repair``)."""
        if self.route_refresh <= 0 or self._route_frozen:
            return
        now = self._now()
        if now - self._route_last < self.route_refresh:
            return
        self._route_last = now
        try:
            self._refresh_route()
        except StoreError:
            pass  # every shard down: the operation itself will report it

    def _refresh_route(self) -> None:
        """Adopt the newest published routing map, if any.

        Reads the map from every reachable shard and adopts the highest
        epoch that beats the local one; then (anti-entropy for the map
        itself) rewrites the local map onto shards serving an older or
        missing copy, so the map survives shards that were down when a
        migration published it.
        """
        n = len(self._pools)
        best: Optional[Dict[str, Any]] = None
        best_epoch = -1
        seen: Dict[int, int] = {}
        up, probe, _rest = self._split_health(list(range(n)))
        for idx in up + probe:
            try:
                raw = self._shard_op(idx, lambda c: c.get(_ROUTE_KEY))
            except KeyNotFound:
                seen[idx] = -1
                continue
            except StoreError:
                continue
            try:
                doc = json.loads(raw.decode("utf-8"))
                epoch = int(doc["epoch"])
            except (ValueError, TypeError, KeyError, UnicodeDecodeError):
                continue  # damaged copy; the rewrite below repairs it
            seen[idx] = epoch
            if epoch > best_epoch:
                best, best_epoch = doc, epoch
        adopted = False
        with self._route_lock:
            if (best is not None and not self._route_frozen
                    and best_epoch > self._routing_epoch):
                self._routing_epoch = best_epoch
                self._slot_owner = {
                    int(s): int(d)
                    for s, d in (best.get("owner") or {}).items()}
                self._migrating = {
                    int(s): int(d)
                    for s, d in (best.get("migrating") or {}).items()}
                self._draining = {
                    int(s): int(d)
                    for s, d in (best.get("draining") or {}).items()}
                adopted = True
            local_epoch = self._routing_epoch
        if adopted:
            self.stats.note_route_refresh()
            trace.event("netkv.route_adopt", epoch=local_epoch)
        if local_epoch <= 0:
            return  # pristine cluster: nothing worth republishing
        doc = self._route_doc()
        for idx, epoch in seen.items():
            if epoch < local_epoch:
                try:
                    self._shard_op(idx,
                                   lambda c, v=doc: c.set(_ROUTE_KEY, v))
                except StoreError:
                    pass

    def _route_grace(self) -> None:
        """Sleep out one refresh interval (plus margin) so every live
        client has re-read the published map before the next migration
        phase depends on it."""
        if self.route_refresh > 0:
            time.sleep(self.route_refresh * 1.5)

    def client_for(self, key: str) -> NetKVClient:
        """Legacy accessor: the dedicated client of a key's primary shard."""
        return self.clients[self._replicas_for(key)[0]]

    def _split_health(self, shards: List[int]) -> Tuple[List[int], List[int], List[int]]:
        """Partition shards into (up, probe-eligible, cooling-down).

        A down shard whose cooldown elapsed claims its probe slot here,
        so concurrent operations don't all pay for the same probe.
        """
        now = self._now()
        up: List[int] = []
        probe: List[int] = []
        rest: List[int] = []
        with self._health_lock:
            for idx in shards:
                st = self._states[idx]
                if st.up:
                    up.append(idx)
                elif now - st.last_attempt >= self.probe_cooldown:
                    st.last_attempt = now
                    probe.append(idx)
                else:
                    rest.append(idx)
        return up, probe, rest

    def _mark_down(self, idx: int) -> None:
        now = self._now()
        with self._health_lock:
            st = self._states[idx]
            st.last_attempt = now
            if not st.up:
                return
            st.up = False
            st.down_since = now
        self.stats.note_shard_down()
        trace.event("netkv.shard_down", shard=idx)

    def _mark_up(self, idx: int) -> None:
        st = self._states[idx]
        if st.up:
            return  # fast path: no lock on the healthy hot path
        with self._health_lock:
            if st.up:
                return
            st.up = True
            self._repair_pending.add(idx)
        self.stats.note_shard_up()
        trace.event("netkv.shard_up", shard=idx,
                    downtime=self._now() - st.down_since)

    def _probe(self, idx: int) -> None:
        """Half-open check of a down shard: one cheap PING, no retries."""
        try:
            self._probers[idx].ping()
        except StoreUnavailable:
            self._mark_down(idx)
        except StoreError:
            self._mark_up(idx)  # it answered, even if with an error
        else:
            self._mark_up(idx)

    def _shard_op(self, idx: int, fn):
        """Run ``fn(client)`` against shard ``idx`` on a pooled connection,
        folding the outcome into the shard's health state."""
        pool = self._pools[idx]
        client = pool.acquire()
        try:
            result = fn(client)
        except StoreUnavailable:
            pool.release(client, discard=True)
            self._mark_down(idx)
            raise
        except StoreError:
            pool.release(client)  # the shard answered; the connection is fine
            self._mark_up(idx)
            raise
        except BaseException:
            pool.release(client, discard=True)
            raise
        pool.release(client)
        self._mark_up(idx)
        return result

    # --- single-key operations -------------------------------------------

    def set(self, key: str, value: bytes) -> None:
        self._maybe_repair()
        self._maybe_refresh_route()
        window, target, _drain = self._placement(key)
        if target is None:
            self._set_window(key, value, window)
            return
        # Dual-write while the slot migrates: the destination window is
        # what survives cutover, so its ack is the one that counts; the
        # source write keeps double-reads fresh and is best-effort.
        self._set_window(key, value, target)
        self.stats.note_dual_write()
        try:
            self._set_window(key, value, window)
        except StoreUnavailable:
            pass

    def _set_window(self, key: str, value: bytes,
                    replicas: List[int]) -> None:
        up, probe, rest = self._split_health(replicas)
        acked: List[int] = []
        last_exc: Optional[BaseException] = None

        def attempt(idx: int) -> None:
            nonlocal last_exc
            try:
                self._shard_op(idx, lambda c, k=key, v=value: c.set(k, v))
                acked.append(idx)
            except StoreUnavailable as exc:
                last_exc = exc

        for idx in up:
            attempt(idx)
        if not acked:
            for idx in probe + rest:
                attempt(idx)
        else:
            for idx in probe:
                self._probe(idx)
        if not acked:
            raise StoreUnavailable(
                f"no replica of {len(replicas)} accepted the write of {key!r}"
            ) from last_exc
        if self._tombstones:
            self._clear_tombstones([key], acked)

    def get(self, key: str) -> bytes:
        self._maybe_repair()
        self._maybe_refresh_route()
        window, target, _drain = self._placement(key)
        if target is None:
            return self._get_window(key, window)
        # Double-read while the slot migrates: the destination window
        # has every write made since migration began; the source still
        # holds the not-yet-copied past. NF only once both say NF.
        first: Optional[BaseException] = None
        try:
            return self._get_window(key, target)
        except (KeyNotFound, StoreUnavailable) as exc:
            first = exc
        try:
            return self._get_window(key, window)
        except KeyNotFound:
            if isinstance(first, StoreUnavailable):
                # The source proves absence of old data, but a write
                # acked by the unreachable destination could exist.
                raise first
            raise

    def _get_window(self, key: str, replicas: List[int]) -> bytes:
        up, probe, rest = self._split_health(replicas)
        attempted: List[int] = []
        nf: List[int] = []
        last_exc: Optional[BaseException] = None
        value: Optional[bytes] = None
        for tier in (up, probe + rest):
            if tier is not up and nf:
                break  # NF from a live replica wins over probing dead ones
            for idx in tier:
                attempted.append(idx)
                try:
                    value = self._shard_op(idx, lambda c, k=key: c.get(k))
                except KeyNotFound:
                    nf.append(idx)
                    continue
                except StoreUnavailable as exc:
                    last_exc = exc
                    continue
                break
            if value is not None or nf:
                break
        for idx in probe:
            if idx not in attempted:
                self._probe(idx)
        if value is None:
            if nf:
                raise KeyNotFound(key)
            raise StoreUnavailable(
                f"all {len(replicas)} replica(s) for {key!r} are unavailable"
            ) from last_exc
        if len(attempted) > 1:
            self.stats.note_failover()
            trace.event("netkv.failover", key=key, served_by=attempted[-1])
        if nf:
            repaired = 0
            for idx in nf:
                try:
                    self._shard_op(idx, lambda c, k=key, v=value: c.set(k, v))
                    repaired += 1
                except StoreError:
                    pass
            if repaired:
                self.stats.note_read_repair(repaired)
        return value

    def delete(self, key: str) -> None:
        self._maybe_repair()
        self._maybe_refresh_route()
        window, target, drain = self._placement(key)
        if target is None and drain is None:
            self._delete_window(key, window)
            return
        # Delete from both windows; the forced tombstone also stops the
        # migration copier (including the post-cutover straggler pass
        # over a draining slot) from resurrecting this key out of a
        # source read that predates the delete.
        other = target if target is not None else drain
        replicas = list(dict.fromkeys(other + window))
        self._delete_window(key, replicas, force_tombstone=True)

    def _delete_window(self, key: str, replicas: List[int],
                       force_tombstone: bool = False) -> None:
        up, probe, rest = self._split_health(replicas)
        reached: List[int] = []
        found = False
        last_exc: Optional[BaseException] = None

        def attempt(idx: int) -> None:
            nonlocal found, last_exc
            try:
                self._shard_op(idx, lambda c, k=key: c.delete(k))
                reached.append(idx)
                found = True
            except KeyNotFound:
                reached.append(idx)
            except StoreUnavailable as exc:
                last_exc = exc

        for idx in up:
            attempt(idx)
        if not reached:
            for idx in probe + rest:
                attempt(idx)
        else:
            for idx in probe:
                self._probe(idx)
        if not reached:
            raise StoreUnavailable(
                f"all {len(replicas)} replica(s) for {key!r} are unavailable"
            ) from last_exc
        if force_tombstone or len(reached) < len(replicas):
            self._write_tombstones([key], reached)
        if not found:
            raise KeyNotFound(key)

    def keys(self, prefix: str = "") -> List[str]:
        self._maybe_repair()
        self._maybe_refresh_route()
        n = len(self._pools)
        out: set = set()
        reached: set = set()
        last_exc: Optional[BaseException] = None
        up, probe, rest = self._split_health(list(range(n)))

        def scan(idx: int) -> None:
            nonlocal last_exc
            try:
                out.update(self._shard_op(idx, lambda c, p=prefix: c.keys(p)))
                reached.add(idx)
            except StoreUnavailable as exc:
                last_exc = exc

        for idx in up + probe:
            scan(idx)
        attempted = set(up) | set(probe)
        # Coverage check: a dead shard must not silently erase its slice
        # of the keyspace — every replica window needs a live witness.
        for p in range(n):
            window = [(p + r) % n for r in range(self.replication)]
            if any(w in reached for w in window):
                continue
            for idx in window:
                if idx in attempted:
                    continue
                attempted.add(idx)
                scan(idx)
                if idx in reached:
                    break
            if not any(w in reached for w in window):
                raise StoreUnavailable(
                    f"replica window {window} is entirely unavailable; a key "
                    f"listing would silently lose its keyspace slice"
                ) from last_exc
        # A union scan may see stale keys on a just-recovered replica;
        # its peers' tombstones veto them until repair prunes for real.
        tombs = {k[len(_TOMB):] for k in out if k.startswith(_TOMB)}
        if prefix.startswith(_TOMB):  # explicit tombstone listing (GC)
            return sorted(k for k in out if k.startswith(prefix))
        return sorted(k for k in out
                      if not k.startswith(_TOMB) and k not in tombs
                      and k != _ROUTE_KEY)

    def rename(self, src: str, dst: str) -> None:
        self._maybe_repair()
        self._maybe_refresh_route()
        special = self._migrating_slots()
        src_replicas = self._replicas_for(src)
        if (src_replicas == self._replicas_for(dst)
                and not (special and (key_slot(src) in special
                                      or key_slot(dst) in special))):
            self._rename_native(src, dst, src_replicas)
            return
        # Two-phase cross-shard move: the destination copy is fully
        # acknowledged before the source delete, so a shard death
        # between the phases leaves a duplicate (counted below), never
        # a lost value.
        value = self.get(src)
        self.set(dst, value)
        try:
            self.delete(src)
        except KeyNotFound:
            pass  # a concurrent mover finished the delete first
        except StoreUnavailable:
            self.stats.note_rename_orphan()
            trace.event("netkv.rename_orphan", src=src, dst=dst)

    def _rename_native(self, src: str, dst: str, replicas: List[int]) -> None:
        """Same-window rename: one RENAME round trip per replica."""
        up, probe, rest = self._split_health(replicas)
        reached: List[int] = []
        renamed = False
        last_exc: Optional[BaseException] = None

        def attempt(idx: int) -> None:
            nonlocal renamed, last_exc
            try:
                self._shard_op(idx, lambda c, s=src, d=dst: c.rename(s, d))
                reached.append(idx)
                renamed = True
            except KeyNotFound:
                reached.append(idx)
            except StoreUnavailable as exc:
                last_exc = exc

        for idx in up:
            attempt(idx)
        if not reached:
            for idx in probe + rest:
                attempt(idx)
        else:
            for idx in probe:
                self._probe(idx)
        if not reached:
            raise StoreUnavailable(
                f"all {len(replicas)} replica(s) for {src!r} are unavailable"
            ) from last_exc
        if not renamed:
            raise KeyNotFound(src)
        if len(reached) < len(replicas):
            self._write_tombstones([src], reached)

    # --- pipelined batch operations --------------------------------------

    def _group_positions(self, keys: List[str],
                         skip: Optional[Dict[int, int]] = None
                         ) -> Dict[int, List[int]]:
        """Key positions grouped by primary shard (batch routing).

        Keys whose slot appears in ``skip`` (in-flight migrations) are
        left out — the caller routes them through the single-key path,
        which knows how to dual-write and double-read.
        """
        n = len(self._pools)
        with self._route_lock:
            owner = dict(self._slot_owner) if self._slot_owner else None
        groups: Dict[int, List[int]] = {}
        for i, k in enumerate(keys):
            slot = key_slot(k)
            if skip is not None and slot in skip:
                continue
            primary = owner.get(slot, slot % n) if owner else slot % n
            groups.setdefault(primary, []).append(i)
        return groups

    def mget(self, keys: List[str]) -> List[Optional[bytes]]:
        """Values for ``keys`` in order (None where missing), batching
        up to ``config.batch_keys`` keys per round trip with per-key
        replica failover and read repair."""
        self._maybe_repair()
        self._maybe_refresh_route()
        keys = list(keys)
        out: List[Optional[bytes]] = [None] * len(keys)
        migrating = self._migrating_slots()
        for primary, positions in sorted(
                self._group_positions(keys, migrating).items()):
            replicas = self._window(primary)
            for chunk in _chunks(positions, self.config.batch_keys):
                self._mget_chunk(keys, chunk, replicas, out)
        if migrating:
            # Keys mid-migration take the double-reading single-key path.
            for i, k in enumerate(keys):
                if key_slot(k) in migrating:
                    try:
                        out[i] = self.get(k)
                    except KeyNotFound:
                        out[i] = None
        return out

    def _mget_chunk(self, keys: List[str], positions: List[int],
                    replicas: List[int], out: List[Optional[bytes]]) -> None:
        up, probe, rest = self._split_health(replicas)
        remaining = list(positions)
        reached: List[Tuple[int, List[int]]] = []  # (shard, positions it lacked)
        last_exc: Optional[BaseException] = None
        nattempt = 0

        def attempt(idx: int) -> None:
            nonlocal remaining, last_exc, nattempt
            nattempt += 1
            try:
                values = self._shard_op(
                    idx, lambda c, ks=[keys[p] for p in remaining]: c.mget(ks))
            except StoreUnavailable as exc:
                last_exc = exc
                return
            still: List[int] = []
            for p, v in zip(remaining, values):
                if v is None:
                    still.append(p)
                else:
                    out[p] = v
            if nattempt > 1 and len(still) < len(remaining):
                self.stats.note_failover()
            reached.append((idx, still))
            remaining = still

        for idx in up:
            attempt(idx)
            if not remaining:
                break
        if not reached:
            for idx in probe + rest:
                attempt(idx)
                if not remaining:
                    break
        else:
            for idx in probe:
                self._probe(idx)
        if not reached:
            raise StoreUnavailable(
                f"all {len(replicas)} replica(s) for a {len(positions)}-key "
                f"batch read are unavailable"
            ) from last_exc
        # Read repair: replicas that answered but lacked keys a peer had.
        repaired = 0
        for idx, missed in reached:
            items = [(keys[p], out[p]) for p in missed if out[p] is not None]
            if not items:
                continue
            try:
                self._shard_op(idx, lambda c, it=items: c.mset(it))
                repaired += len(items)
            except StoreError:
                pass
        if repaired:
            self.stats.note_read_repair(repaired)

    def mset(self, items: List[Tuple[str, bytes]]) -> None:
        """Write many key/value pairs, batching per primary shard and
        replicating each batch; raises :class:`StoreUnavailable` if any
        batch gets zero acknowledgements (earlier batches may have
        landed — writes are at-least-once, as with single-key retries)."""
        self._maybe_repair()
        self._maybe_refresh_route()
        items = list(items)
        n = len(self._pools)
        migrating = self._migrating_slots()
        with self._route_lock:
            owner = dict(self._slot_owner) if self._slot_owner else None
        groups: Dict[int, List[Tuple[str, bytes]]] = {}
        detour: List[Tuple[str, bytes]] = []
        for k, v in items:
            slot = key_slot(k)
            if migrating is not None and slot in migrating:
                detour.append((k, v))
                continue
            primary = owner.get(slot, slot % n) if owner else slot % n
            groups.setdefault(primary, []).append((k, v))
        for primary, group in sorted(groups.items()):
            replicas = self._window(primary)
            for chunk in _chunks(group, self.config.batch_keys):
                self._mset_chunk(chunk, replicas)
        for k, v in detour:
            self.set(k, v)  # dual-writes while the slot migrates

    def _mset_chunk(self, chunk: List[Tuple[str, bytes]],
                    replicas: List[int]) -> None:
        up, probe, rest = self._split_health(replicas)
        acked: List[int] = []
        last_exc: Optional[BaseException] = None

        def attempt(idx: int) -> None:
            nonlocal last_exc
            try:
                self._shard_op(idx, lambda c, it=chunk: c.mset(it))
                acked.append(idx)
            except StoreUnavailable as exc:
                last_exc = exc

        for idx in up:
            attempt(idx)
        if not acked:
            for idx in probe + rest:
                attempt(idx)
        else:
            for idx in probe:
                self._probe(idx)
        if not acked:
            raise StoreUnavailable(
                f"no replica of {len(replicas)} accepted a "
                f"{len(chunk)}-key batch write"
            ) from last_exc
        if self._tombstones:
            self._clear_tombstones([k for k, _ in chunk], acked)

    def mdelete(self, keys: List[str]) -> List[bool]:
        """Delete many keys; per-key flags say which existed on any
        replica. Batched per primary shard like :meth:`mget`."""
        self._maybe_repair()
        self._maybe_refresh_route()
        keys = list(keys)
        flags = [False] * len(keys)
        migrating = self._migrating_slots()
        for primary, positions in sorted(
                self._group_positions(keys, migrating).items()):
            replicas = self._window(primary)
            for chunk in _chunks(positions, self.config.batch_keys):
                self._mdel_chunk(keys, chunk, replicas, flags)
        if migrating:
            for i, k in enumerate(keys):
                if key_slot(k) in migrating:
                    try:
                        self.delete(k)  # both windows + copier tombstone
                        flags[i] = True
                    except KeyNotFound:
                        flags[i] = False
        return flags

    def _mdel_chunk(self, keys: List[str], positions: List[int],
                    replicas: List[int], flags: List[bool]) -> None:
        up, probe, rest = self._split_health(replicas)
        chunk_keys = [keys[p] for p in positions]
        reached: List[int] = []
        last_exc: Optional[BaseException] = None

        def attempt(idx: int) -> None:
            nonlocal last_exc
            try:
                fl = self._shard_op(idx, lambda c, ks=chunk_keys: c.mdelete(ks))
            except StoreUnavailable as exc:
                last_exc = exc
                return
            reached.append(idx)
            for p, f in zip(positions, fl):
                if f:
                    flags[p] = True

        for idx in up:
            attempt(idx)
        if not reached:
            for idx in probe + rest:
                attempt(idx)
        else:
            for idx in probe:
                self._probe(idx)
        if not reached:
            raise StoreUnavailable(
                f"all {len(replicas)} replica(s) for a {len(positions)}-key "
                f"batch delete are unavailable"
            ) from last_exc
        if len(reached) < len(replicas):
            self._write_tombstones(chunk_keys, reached)

    # --- tombstones -------------------------------------------------------

    def _write_tombstones(self, keys: List[str], reached: List[int]) -> None:
        """Mark deletions a down replica missed, on the replicas reached."""
        items = [(_TOMB + k, b"") for k in keys]
        for idx in reached:
            try:
                self._shard_op(idx, lambda c, it=items: c.mset(it))
            except StoreError:
                pass
        self._tombstones = True
        trace.event("netkv.tombstone", keys=len(items))

    def _clear_tombstones(self, keys: List[str], reached: List[int]) -> None:
        """A re-write supersedes any pending deletion marker."""
        tomb_keys = [_TOMB + k for k in keys]
        for idx in reached:
            try:
                self._shard_op(idx, lambda c, ks=tomb_keys: c.mdelete(ks))
            except StoreError:
                pass

    # --- fail-back repair -------------------------------------------------

    def repair(self) -> None:
        """Probe down shards and run any pending anti-entropy passes now.

        This also happens automatically: operations probe cooled-down
        shards as a side effect, and a recovered shard is repaired at
        the next operation's entry. Calling it directly is useful after
        an orchestrated restart.
        """
        with self._health_lock:
            down = [i for i, st in enumerate(self._states) if not st.up]
        for idx in down:
            self._probe(idx)
        self._maybe_repair()

    def _maybe_repair(self) -> None:
        if not self._repair_pending or self._repairing:
            return
        with self._repair_gate:
            if self._repairing:
                return
            self._repairing = True
        try:
            while True:
                with self._health_lock:
                    if not self._repair_pending:
                        break
                    idx = min(self._repair_pending)
                    self._repair_pending.discard(idx)
                self._repair_shard(idx)
            if self._tombstones:
                with self._health_lock:
                    all_up = (not self._repair_pending
                              and all(st.up for st in self._states))
                if all_up:
                    self._gc_tombstones()
        finally:
            self._repairing = False

    def _repair_shard(self, s: int) -> None:
        """Anti-entropy for a recovered shard: prune deletions it missed,
        pull writes it missed, push acked writes only it holds."""
        n = len(self._pools)
        r = self.replication
        if r < 2:
            return
        with trace.span("netkv.repair") as sp:
            try:
                skeys = set(self._shard_op(s, lambda c: c.keys()))
            except StoreError:
                return  # went down again; re-queued at the next fail-back
            skeys.discard(_ROUTE_KEY)  # lives on every shard by design
            peers = sorted({(s + d) % n for d in range(-(r - 1), r)} - {s})
            peer_keys: Dict[int, set] = {}
            all_tombs: set = set()
            for d in peers:
                if not self._states[d].up:
                    continue
                try:
                    dk = set(self._shard_op(d, lambda c: c.keys()))
                except StoreError:
                    continue
                dk.discard(_ROUTE_KEY)
                peer_keys[d] = dk
                all_tombs.update(k[len(_TOMB):] for k in dk
                                 if k.startswith(_TOMB))
            copied = 0
            # 1) prune: keys a healthy peer saw deleted while s was down
            dead = [k for k in skeys
                    if not k.startswith(_TOMB) and k in all_tombs]
            for chunk in _chunks(dead, self.config.batch_keys):
                try:
                    self._shard_op(s, lambda c, ks=chunk: c.mdelete(ks))
                    skeys.difference_update(chunk)
                except StoreError:
                    break
            # 2) pull: live keys peers hold for windows that include s
            for d, dk in peer_keys.items():
                want = [k for k in dk
                        if not k.startswith(_TOMB) and k not in skeys
                        and k not in all_tombs
                        and s in self._replicas_for(k)]
                for chunk in _chunks(want, self.config.batch_keys):
                    try:
                        values = self._shard_op(d, lambda c, ks=chunk: c.mget(ks))
                        items = [(k, v) for k, v in zip(chunk, values)
                                 if v is not None]
                        if items:
                            self._shard_op(s, lambda c, it=items: c.mset(it))
                            copied += len(items)
                            skeys.update(k for k, _ in items)
                    except StoreError:
                        break
            # 3) push: acked writes only s holds (its peers were down too)
            for d, dk in peer_keys.items():
                give = [k for k in skeys
                        if not k.startswith(_TOMB) and k not in dk
                        and k not in all_tombs
                        and d in self._replicas_for(k)]
                for chunk in _chunks(give, self.config.batch_keys):
                    try:
                        values = self._shard_op(s, lambda c, ks=chunk: c.mget(ks))
                        items = [(k, v) for k, v in zip(chunk, values)
                                 if v is not None]
                        if items:
                            self._shard_op(d, lambda c, it=items: c.mset(it))
                            copied += len(items)
                    except StoreError:
                        break
            # 4) prune foreign copies: keys whose slot migrated away
            # while s was down, so s missed the post-cutover cleanup.
            # Keys of a slot still mid-migration or draining are left
            # alone — the source window is live state until the
            # migration's own cleanup retires it.
            foreign: List[str] = []
            with self._route_lock:
                overrides = bool(self._slot_owner)
                migrating = set(self._migrating) | set(self._draining)
            if overrides:
                foreign = [k for k in skeys
                           if not k.startswith(_TOMB)
                           and key_slot(k) not in migrating
                           and s not in self._replicas_for(k)]
                for chunk in _chunks(foreign, self.config.batch_keys):
                    try:
                        self._shard_op(s, lambda c, ks=chunk: c.mdelete(ks))
                    except StoreError:
                        break
            if copied:
                self.stats.note_read_repair(copied)
            if sp:
                sp.set(shard=s, copied=copied,
                       pruned=len(dead) + len(foreign))

    def _gc_tombstones(self) -> None:
        """Drop deletion markers once every shard is healthy again."""
        for idx in range(len(self._pools)):
            try:
                tombs = self._shard_op(idx, lambda c: c.keys(_TOMB))
                for chunk in _chunks(tombs, self.config.batch_keys):
                    self._shard_op(idx, lambda c, ks=chunk: c.mdelete(ks))
            except StoreError:
                return  # a shard vanished again; keep markers, retry later
        self._tombstones = False

    # --- online slot migration --------------------------------------------

    def migrate_slots(self, slots: Iterable[int], dst: int) -> Dict[str, Any]:
        """Move primary ownership of hash ``slots`` to shard ``dst``
        while serving reads and writes — including ones issued by
        *other* cluster instances (a serve daemon, another CLI).

        The routing map is shared state: migrations publish it to the
        shards under a reserved key that every instance polls (and
        durable shards persist), so a migration run from a standalone
        ``repro netkv --migrate`` process is observed by every
        concurrent client within one ``route_refresh`` interval.

        Six phases. (1) Mark + publish: adopt the newest shared map,
        mark the slots migrating (at least one shard must accept the
        published map), and wait out one refresh interval so every live
        client dual-writes (destination ack required) and double-reads
        (destination first). (2) Copy + drain: scan the live keys of
        the moving slots and write the ones the destination lacks with
        MSETNX, so a value dual-written after the scan is never
        clobbered by an older source read; repeat until a pass copies
        nothing.  If the drain never converges (e.g. the destination
        primary is unreachable, so the presence probe keeps failing)
        the migration aborts and rolls back instead of cutting over
        with keys still in flight. (3) Cutover: record the override,
        bump the epoch, publish — the destination window is now
        authoritative; the slots enter a *draining* state in which
        deletes tombstone both windows. (4) Drain stale routes: wait
        another refresh interval so writes issued under the pre-mark
        placement have landed. (5) Straggler pass: one more copy out of
        the old window catches any such late write before it can be
        pruned (the draining-state tombstones keep this pass from
        resurrecting keys deleted after cutover). (6) Cleanup: delete
        the source-side copies that no longer sit in any replica window
        and publish the final map.  A failure after cutover leaves the
        slots draining — re-running the same migration resumes at (5).
        """
        n = len(self._pools)
        dst = int(dst)
        if not 0 <= dst < n:
            raise StoreError(f"destination shard {dst} out of range 0..{n - 1}")
        requested = sorted({int(s) for s in slots})
        for s in requested:
            if not 0 <= s < _HASH_SLOTS:
                raise StoreError(f"slot {s} out of range 0..{_HASH_SLOTS - 1}")
        # Adopt the newest published map first: a fresh CLI process
        # must not publish epoch 1 over a daemon's epoch 40 state.
        self._refresh_route()
        with self._route_lock:
            if self._route_frozen:
                raise StoreError("a migration is already running here")
            stuck = [s for s in requested if s in self._migrating]
            if stuck:
                raise StoreError(f"slots already migrating: {stuck[:8]}")
            astray = [s for s in requested
                      if s in self._draining
                      and self._primary_for_slot(s) != dst]
            if astray:
                raise StoreError(
                    f"slots still draining toward another shard: "
                    f"{astray[:8]}; re-run that migration to finish it")
            # Slots already owned by dst but still draining: resume
            # their interrupted cleanup instead of re-copying.
            resume = {s: self._draining[s] for s in requested
                      if s in self._draining}
            moving = [s for s in requested
                      if s not in resume and self._primary_for_slot(s) != dst]
            src_primary = {s: self._primary_for_slot(s) for s in moving}
            src_primary.update(resume)
            for s in moving:
                self._migrating[s] = dst
            self._routing_epoch += 1
            epoch = self._routing_epoch
            self._route_frozen = bool(moving or resume)
        if not moving and not resume:
            return {"slots": 0, "keys_moved": 0, "epoch": epoch}
        trace.event("netkv.migrate_begin", slots=len(moving),
                    resuming=len(resume), dst=dst)
        moving_set = set(moving)
        all_moving = moving_set | set(resume)
        dst_window = self._window(dst)
        moved = 0
        try:
            if moving:
                # Phase 1: publish the mark. Not best-effort — a mark
                # nobody else can observe must not lead to a cleanup
                # that prunes copies other writers still route to.
                self._publish_route()
                self._route_grace()
                # Phase 2: copy + drain. Writes arriving after the mark
                # dual-write to the destination, so each pass only
                # chases keys that predate it; pass 2 is normally empty.
                copied = 0
                for _ in range(8):
                    copied = self._copy_pass(moving_set, dst, dst_window,
                                             self._replicas_for)
                    moved += copied
                    if copied == 0:
                        break
                if copied:
                    raise StoreUnavailable(
                        f"slot drain did not converge: the final copy "
                        f"pass still moved {copied} key(s) — is the "
                        f"destination primary (shard {dst}) reachable? "
                        f"Rolled back to the source placement.")
        except BaseException:
            # Abort: un-mark so routing falls back to the source window
            # (destination copies are surplus replicas, never stale
            # truth — the source kept receiving every dual-write).
            # Slots that were merely resuming cleanup stay draining.
            with self._route_lock:
                for s in moving:
                    self._migrating.pop(s, None)
                self._routing_epoch += 1
                self._route_frozen = False
            self._publish_route(best_effort=True)
            raise
        # Phase 3: cutover.
        with self._route_lock:
            for s in moving:
                if dst == s % n:
                    self._slot_owner.pop(s, None)  # back to default map
                else:
                    self._slot_owner[s] = dst
                self._migrating.pop(s, None)
                if src_primary[s] != dst:
                    self._draining[s] = src_primary[s]
            self._routing_epoch += 1
            epoch = self._routing_epoch
        try:
            # Publishes after cutover are best-effort: a client still
            # on the mark-epoch map keeps dual-writing/double-reading,
            # which stays correct against the new window — just slower.
            self._publish_route(best_effort=True)
            # Phase 4: wait out clients still routing under the
            # pre-mark placement; their in-flight writes land on the
            # old window within one refresh interval.
            self._route_grace()
            # Phase 5: straggler pass, reading the *old* window (the
            # override now routes to the new one).
            moved += self._copy_pass(
                all_moving, dst, dst_window,
                lambda k: self._window(src_primary[key_slot(k)]))
            # Phase 6: cleanup stale source copies.
            self._cleanup_moved(all_moving, set(src_primary.values()),
                                dst_window)
        except BaseException:
            # Post-cutover failure: ownership stands (the drain
            # converged) but the old copies were not fully reconciled.
            # Leave the slots draining — deletes keep tombstoning both
            # windows and repair leaves the old copies alone — and
            # publish that state; re-running the migration resumes it.
            with self._route_lock:
                self._routing_epoch += 1
                self._route_frozen = False
            self._publish_route(best_effort=True)
            raise
        with self._route_lock:
            for s in all_moving:
                self._draining.pop(s, None)
            self._routing_epoch += 1
            epoch = self._routing_epoch
            self._route_frozen = False
        self._publish_route(best_effort=True)
        self.stats.note_migration(len(moving), moved)
        trace.event("netkv.migrate_cutover", slots=len(moving), keys=moved,
                    dst=dst, epoch=epoch)
        return {"slots": len(moving), "keys_moved": moved, "epoch": epoch}

    def _copy_pass(self, moving: set, dst: int, dst_window: List[int],
                   read_window) -> int:
        """One copy pass: push live keys of ``moving`` slots that the
        destination primary does not hold yet, reading each from
        ``read_window(key)``. Returns keys copied."""
        candidates = [k for k in self.keys() if key_slot(k) in moving]
        copied = 0
        for chunk in _chunks(candidates, max(1, self.config.batch_keys // 2)):
            # Presence check against the destination primary — a key
            # already there came from an earlier pass or a dual-write
            # (fresher than anything the source can tell us), and a
            # tombstone there means it was deleted mid-migration.
            probe = chunk + [_TOMB + k for k in chunk]
            try:
                have = self._shard_op(dst, lambda c, ks=probe: c.mget(ks))
            except StoreError:
                have = [None] * len(probe)  # dst down: MSETNX is idempotent
            need = [k for k, v, t in zip(chunk, have[:len(chunk)],
                                         have[len(chunk):])
                    if v is None and t is None]
            items: List[Tuple[str, bytes]] = []
            for k in need:
                # Read the named window directly: a double-read via
                # get() would consult the destination window first and
                # read-repair the value onto it on overlap, making the
                # MSETNX below report nothing stored and the drain
                # accounting lie. Pre-cutover, _replicas_for still
                # routes to the source; the post-cutover straggler pass
                # passes the captured old window instead.
                try:
                    items.append((k, self._get_window(k, read_window(k))))
                except KeyNotFound:
                    continue  # deleted between the scan and this read
            if items:
                copied += self._msetnx_window(items, dst_window)
        return copied

    def _msetnx_window(self, items: List[Tuple[str, bytes]],
                       replicas: List[int]) -> int:
        """Replicated set-if-absent across a window; ack-on->=1 like
        :meth:`_mset_chunk`. Returns how many keys were actually new."""
        up, probe, rest = self._split_health(replicas)
        acked: List[int] = []
        stored = 0
        last_exc: Optional[BaseException] = None

        def attempt(idx: int) -> None:
            nonlocal stored, last_exc
            try:
                flags = self._shard_op(idx, lambda c, it=items: c.msetnx(it))
            except StoreUnavailable as exc:
                last_exc = exc
                return
            acked.append(idx)
            stored = max(stored, sum(flags))

        for idx in up:
            attempt(idx)
        if not acked:
            for idx in probe + rest:
                attempt(idx)
        else:
            for idx in probe:
                self._probe(idx)
        if not acked:
            raise StoreUnavailable(
                f"no replica of {len(replicas)} accepted a "
                f"{len(items)}-key migration copy"
            ) from last_exc
        return stored

    def _cleanup_moved(self, moving: set, sources: set,
                       dst_window: List[int]) -> None:
        """Post-cutover: drop copies of moved keys from shards that are
        no longer in the slot's replica window (a union key scan would
        otherwise resurrect them in listings after a later delete)."""
        old: set = set()
        for src in sources:
            old.update(self._window(src))
        for idx in sorted(old - set(dst_window)):
            try:
                held = self._shard_op(idx, lambda c: c.keys())
            except StoreError:
                continue  # down: fail-back repair prunes foreign copies
            doomed = [k for k in held if not k.startswith(_TOMB)
                      and k != _ROUTE_KEY and key_slot(k) in moving]
            for chunk in _chunks(doomed, self.config.batch_keys):
                try:
                    self._shard_op(idx, lambda c, ks=chunk: c.mdelete(ks))
                except StoreError:
                    break

    def snapshot_all(self) -> List[Dict[str, Any]]:
        """Ask every shard to write a snapshot and compact its WAL;
        returns one persistence-counter dict per shard."""
        return [self._shard_op(idx, lambda c: c.snapshot())
                for idx in range(len(self._pools))]

    # --- introspection ----------------------------------------------------

    def replica_health(self) -> Dict[str, Any]:
        """Per-shard health snapshot for telemetry and the CLI."""
        with self._health_lock:
            shards = [
                {"address": f"{addr[0]}:{addr[1]}", "up": st.up}
                for addr, st in zip(self.addresses, self._states)
            ]
            pending = len(self._repair_pending)
        with self._route_lock:
            epoch = self._routing_epoch
            overrides = len(self._slot_owner)
            migrating = len(self._migrating)
            draining = len(self._draining)
        return {
            "replication": self.replication,
            "nshards": len(shards),
            "up": sum(1 for s in shards if s["up"]),
            "shards": shards,
            "pending_repairs": pending,
            "routing_epoch": epoch,
            "slot_overrides": overrides,
            "migrating_slots": migrating,
            "draining_slots": draining,
        }

    def close(self) -> None:
        for pool in self._pools:
            pool.close()
        for client in self._probers + self.clients:
            client.close()
        with self._loop_lock:
            lt, self._loop_thread = self._loop_thread, None
        if lt is not None:
            lt.stop()


class NetKVStore(DataStore):
    """DataStore adapter over a :class:`NetKVCluster`.

    Drop-in for the in-process ``kv://`` backend when components run in
    separate processes; the feedback managers work against it unchanged.
    """

    def __init__(self, cluster: NetKVCluster) -> None:
        self.cluster = cluster

    @classmethod
    def connect(cls, addresses: List[Tuple[str, int]],
                config: Optional[TransportConfig] = None,
                rng: Optional[np.random.Generator] = None,
                replication: int = 1,
                probe_cooldown: float = 0.25,
                transport: str = "async",
                route_refresh: Optional[float] = None) -> "NetKVStore":
        return cls(NetKVCluster(addresses, config=config, rng=rng,
                                replication=replication,
                                probe_cooldown=probe_cooldown,
                                transport=transport,
                                route_refresh=route_refresh))

    @property
    def transport_stats(self) -> TransportStats:
        """Wire-level counters across every shard of the cluster."""
        return self.cluster.stats

    def replica_health(self) -> Dict[str, Any]:
        """Per-shard health snapshot (see NetKVCluster.replica_health)."""
        return self.cluster.replica_health()

    def migrate_slots(self, slots: Iterable[int], dst: int) -> Dict[str, Any]:
        """Online resharding (see NetKVCluster.migrate_slots)."""
        return self.cluster.migrate_slots(slots, dst)

    def snapshot_all(self) -> List[Dict[str, Any]]:
        """Snapshot + WAL-compact every shard (persistent servers only)."""
        return self.cluster.snapshot_all()

    def write(self, key: str, data: bytes) -> None:
        self.cluster.set(validate_key(key), data)

    def read(self, key: str) -> bytes:
        return self.cluster.get(key)

    def delete(self, key: str) -> None:
        self.cluster.delete(key)

    def keys(self, prefix: str = "") -> List[str]:
        return self.cluster.keys(prefix)

    def move(self, src: str, dst: str) -> None:
        self.cluster.rename(src, validate_key(dst))

    # --- batched overrides (one MGET/MSET/MDEL round trip per shard) ------
    #
    # __init_subclass__ auto-instruments only the five primitives, so
    # these count their own IOStats and open their own trace spans.

    def read_present(self, keys: Iterable[str]) -> Dict[str, bytes]:
        keys = list(keys)
        with trace.span("store.read_many") as sp:
            values = self.cluster.mget(keys)
            out = {k: v for k, v in zip(keys, values) if v is not None}
            for v in out.values():
                self.stats.note("read", len(v))
            if sp:
                sp.set(keys=len(keys), found=len(out),
                       bytes=sum(len(v) for v in out.values()))
        return out

    def read_many(self, keys: Iterable[str]) -> Dict[str, bytes]:
        keys = list(keys)
        found = self.read_present(keys)
        for k in keys:
            if k not in found:
                raise KeyNotFound(k)
        return found

    def write_many(self, items: Union[Mapping[str, bytes],
                                      Iterable[Tuple[str, bytes]]]) -> None:
        pairs = list(items.items()) if hasattr(items, "items") else list(items)
        with trace.span("store.write_many") as sp:
            self.cluster.mset([(validate_key(k), v) for k, v in pairs])
            for _, v in pairs:
                self.stats.note("write", len(v))
            if sp:
                sp.set(keys=len(pairs), bytes=sum(len(v) for _, v in pairs))

    def delete_many(self, keys: Iterable[str]) -> int:
        keys = list(keys)
        with trace.span("store.delete_many") as sp:
            flags = self.cluster.mdelete(keys)
            for _ in keys:
                self.stats.note("delete")
            removed = sum(flags)
            if sp:
                sp.set(keys=len(keys), removed=removed)
        return removed

    def close(self) -> None:
        self.cluster.close()
