"""Network-level fault injection for the transport layer.

The Mini-MuMMI experience report and the paper's own §6 both treat the
in-memory store as the availability bottleneck of the campaign: when
thousands of clients hammer a handful of servers, connections get
dropped, delayed, and half-closed. This module provides a deterministic
harness for reproducing those conditions so the transport's
retry/timeout behaviour is testable instead of anecdotal.

A :class:`NetworkFaultInjector` is plugged into a
:class:`~repro.datastore.netkv.NetKVServer`; the server consults it at
two points:

- :meth:`connection_fate` once per accepted connection — ``"drop"``
  closes the connection before any request is read (a full-accept-queue
  or iptables-style drop);
- :meth:`request_fate` once per parsed request — ``"delay"`` sleeps
  before responding (a congested server), ``"close"`` closes the
  connection after reading the request but before responding (a crash
  mid-exchange), ``"garbage"`` responds with bytes that are not a valid
  protocol frame (a desynced or corrupted peer).

All draws — including the *duration* of a delay
(:meth:`delay_duration`) and the *payload* of a garbage response
(:meth:`garbage_payload`) — come from one explicit
:class:`numpy.random.Generator` behind one lock: hand the injector a
named child stream from :class:`repro.util.rng.RngStream` and the
complete fault sequence is byte-identical across runs, which is what
lets a chaos campaign replay exactly.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

import numpy as np

__all__ = ["NetworkFaultInjector", "FAULT_MODES"]

FAULT_MODES = ("drop", "delay", "close", "garbage")


class NetworkFaultInjector:
    """Deterministic drop/delay/close/garbage faults for a socket server.

    Parameters
    ----------
    drop, delay, close, garbage:
        Independent probabilities in [0, 1]. ``drop`` applies per
        connection; the others apply per request. When a request draw
        selects several modes at once, the most destructive wins
        (garbage > close > delay).
    delay_seconds:
        How long a ``"delay"`` fault sleeps.
    garbage_bytes:
        The payload a ``"garbage"`` fault sends in place of a response.
        The default is deliberately not parseable as a protocol frame.
    rng:
        Generator for the fault draws. Defaults to a fixed-seed
        generator so an injector with no arguments is still
        reproducible; pass a :meth:`RngStream.child` stream to tie it
        into a campaign's seed tree.
    """

    def __init__(
        self,
        drop: float = 0.0,
        delay: float = 0.0,
        close: float = 0.0,
        garbage: float = 0.0,
        delay_seconds: float = 0.05,
        garbage_bytes: bytes = b"\xde\xad\xbe\xef garbage\n",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        rates = {"drop": drop, "delay": delay, "close": close, "garbage": garbage}
        for mode, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{mode} rate must be in [0, 1], got {rate}")
        if delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")
        self.rates = rates
        self.delay_seconds = float(delay_seconds)
        self.garbage_bytes = bytes(garbage_bytes)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.injected: Dict[str, int] = {mode: 0 for mode in FAULT_MODES}
        # Server handler threads share one injector; a bare Generator is
        # not thread-safe, and an unguarded draw would also make the
        # draw *order* — and hence replays — nondeterministic.
        self._lock = threading.Lock()

    def connection_fate(self) -> Optional[str]:
        """Fate of a newly accepted connection: ``"drop"`` or None."""
        with self._lock:
            if self.rates["drop"] and self.rng.random() < self.rates["drop"]:
                self.injected["drop"] += 1
                return "drop"
        return None

    def request_fate(self) -> Optional[str]:
        """Fate of one request: ``"garbage"``/``"close"``/``"delay"``/None.

        One draw per mode keeps the per-mode sequences independent of
        each other; the most destructive selected mode wins.
        """
        selected = None
        with self._lock:
            for mode in ("delay", "close", "garbage"):  # escalating destructiveness
                if self.rates[mode] and self.rng.random() < self.rates[mode]:
                    selected = mode
            if selected is not None:
                self.injected[selected] += 1
        return selected

    def delay_duration(self) -> float:
        """Seconds one ``"delay"`` fault stalls: jittered around
        ``delay_seconds`` from the injector's own rng, so the sequence
        of delays replays byte-identically."""
        with self._lock:
            return float(self.rng.uniform(0.5, 1.5)) * self.delay_seconds

    def garbage_payload(self) -> bytes:
        """Payload one ``"garbage"`` fault sends: the unparseable
        ``garbage_bytes`` marker plus an rng-drawn tail, so corrupt
        responses vary per fault yet replay byte-identically."""
        with self._lock:
            tail = self.rng.integers(0, 256, size=int(self.rng.integers(4, 32)))
        return self.garbage_bytes + bytes(tail.astype(np.uint8).tolist())

    def total_injected(self) -> int:
        return sum(self.injected.values())

    def reset(self) -> None:
        for mode in self.injected:
            self.injected[mode] = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rates = ", ".join(f"{m}={r}" for m, r in self.rates.items() if r)
        return f"NetworkFaultInjector({rates or 'inactive'}, injected={self.total_injected()})"
