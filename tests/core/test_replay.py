"""Tests for history persistence and exact replay."""

import numpy as np
import pytest

from repro.core.replay import (
    ReplayMismatch,
    ScheduleTimeline,
    load_history,
    save_history,
    verify_selector_replay,
)
from repro.datastore import KVStore
from repro.sampling.binned import BinnedSampler, BinSpec
from repro.sampling.fps import FarthestPointSampler
from repro.sampling.points import Point
from repro.sched.flux import FluxInstance
from repro.sched.jobspec import JobSpec
from repro.sched.resources import summit_like
from repro.util.clock import EventLoop


def P(pid, *coords):
    return Point(id=pid, coords=np.array(coords, dtype=float))


class TestHistoryStore:
    def test_save_load_roundtrip(self):
        store = KVStore()
        rows = [{"time": 1.0, "selected": ["a"], "candidates": 3, "detail": ""}]
        save_history(store, "hist/patch", rows)
        assert load_history(store, "hist/patch") == rows


class TestSelectorReplay:
    def _run_original(self):
        sampler = FarthestPointSampler(dim=1)
        additions = []
        pts = [P("a", 0.0), P("b", 10.0), P("c", 4.0), P("d", 9.0)]
        for i, p in enumerate(pts[:3]):
            sampler.add(p)
            additions.append((0, p))
        sampler.select(2, now=1.0)
        sampler.add(pts[3])
        additions.append((1, pts[3]))
        sampler.select(1, now=2.0)
        return sampler, additions

    def test_exact_replay_passes(self):
        sampler, additions = self._run_original()
        mismatch = verify_selector_replay(
            lambda: FarthestPointSampler(dim=1), additions, sampler.history_rows()
        )
        assert mismatch is None

    def test_divergent_history_detected(self):
        sampler, additions = self._run_original()
        rows = sampler.history_rows()
        rows[0]["selected"] = ["c", "a"]  # tampered history
        mismatch = verify_selector_replay(
            lambda: FarthestPointSampler(dim=1), additions, rows
        )
        assert isinstance(mismatch, ReplayMismatch)
        assert mismatch.event_index == 0

    def test_binned_sampler_replay_with_same_seed(self):
        def factory():
            return BinnedSampler([BinSpec(0, 1, 4)], rng=np.random.default_rng(5))

        original = factory()
        additions = []
        rng = np.random.default_rng(0)
        for i in range(20):
            p = P(f"p{i}", float(rng.random()))
            original.add(p)
            additions.append((0, p))
        original.select(3, now=1.0)
        original.select(2, now=2.0)
        assert verify_selector_replay(factory, additions, original.history_rows()) is None

    def test_binned_replay_with_wrong_seed_diverges(self):
        original = BinnedSampler([BinSpec(0, 1, 4)], rng=np.random.default_rng(5))
        additions = []
        rng = np.random.default_rng(0)
        for i in range(50):
            p = P(f"p{i}", float(rng.random()))
            original.add(p)
            additions.append((0, p))
        original.select(10, now=1.0)
        mismatch = verify_selector_replay(
            lambda: BinnedSampler([BinSpec(0, 1, 4)], rng=np.random.default_rng(99)),
            additions,
            original.history_rows(),
        )
        assert mismatch is not None


class TestScheduleTimeline:
    @pytest.fixture
    def flux_history(self):
        loop = EventLoop()
        flux = FluxInstance(summit_like(1), loop)
        for i in range(8):  # 6 run at once, 2 wait
            flux.submit(JobSpec(name="cg-sim", ncores=3, ngpus=1, duration=100.0))
        loop.run_until(400.0)
        return flux

    def test_counts_by_state(self, flux_history):
        tl = ScheduleTimeline(flux_history.history_rows())
        assert tl.counts_by_state() == {"completed": 8}

    def test_wait_and_run_times(self, flux_history):
        tl = ScheduleTimeline(flux_history.history_rows())
        waits = tl.wait_times()
        runs = tl.run_times()
        assert waits.size == 8
        assert np.all(runs == pytest.approx(100.0))
        assert waits.max() > waits.min()  # the last two jobs waited

    def test_running_series(self, flux_history):
        tl = ScheduleTimeline(flux_history.history_rows())
        series = tl.running_series([50.0, 150.0, 350.0])
        assert series[0] == 6  # machine full
        assert series[1] == 2  # the stragglers
        assert series[2] == 0

    def test_gpu_series_matches_live_observation(self, flux_history):
        tl = ScheduleTimeline(flux_history.history_rows())
        # "Live" observation reconstructed from the scheduler state:
        times = [50.0, 150.0, 350.0]
        observed = [6, 2, 0]
        assert tl.replay_matches_profile(times, observed)

    def test_per_name_filter(self, flux_history):
        tl = ScheduleTimeline(flux_history.history_rows())
        assert tl.running_series([50.0], name="cg-sim")[0] == 6
        assert tl.running_series([50.0], name="aa-sim")[0] == 0
