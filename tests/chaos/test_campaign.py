"""ChaosCampaign: deterministic fault-injected WM runs, end to end."""

import os

import pytest

from repro.chaos import CampaignFuzzer, ChaosCampaign, ChaosConfig, FaultSchedule

# Tier-1 default is 5 campaigns; nightly runs crank this up (see CHAOS.md).
CAMPAIGNS = int(os.environ.get("REPRO_CHAOS_CAMPAIGNS", "5"))


def run_campaign(schedule, rounds=4, seed=1):
    campaign = ChaosCampaign(schedule, ChaosConfig(seed=seed, rounds=rounds))
    return campaign, campaign.run()


def test_plain_campaign_is_green():
    campaign, report = run_campaign(FaultSchedule().heal(0.0))
    assert report.ok, [v.to_json() for v in report.violations]
    assert report.counters["patches"] > 0
    assert report.counters["cg_finished"] > 0
    assert report.nspans > 0
    assert campaign.store.replica_health()["up"] == 4


def test_shard_outage_campaign_recovers():
    sched = FaultSchedule().shard_down(30.0, 1).shard_up(150.0, 1)
    _, report = run_campaign(sched)
    assert report.ok, [v.to_json() for v in report.violations]
    assert report.chaos["faults_applied"] == 2


def test_full_replica_group_outage_aborts_rounds_not_invariants():
    # Two consecutive shards down kills a replica group: rounds abort
    # with StoreUnavailable, but no acked data may be lost.
    sched = (FaultSchedule()
             .shard_down(61.0, 0).shard_down(61.0, 1)
             .shard_up(150.0, 0).shard_up(150.0, 1))
    _, report = run_campaign(sched)
    assert report.ok, [v.to_json() for v in report.violations]
    assert report.chaos["rounds_aborted"] > 0


def test_checkpoint_restore_mid_campaign_preserves_selectors():
    sched = FaultSchedule().checkpoint_restore(125.0)
    campaign, report = run_campaign(sched, rounds=5)
    assert report.ok, [v.to_json() for v in report.violations]
    assert report.chaos["checkpoints"] == 1
    assert report.chaos["restores"] == 1
    # The swapped-in WM keeps making progress after the restore.
    assert report.counters["patches"] == campaign.wm.counters_snapshot()["patches"]


def test_stall_wedges_then_drains():
    campaign, report = run_campaign(FaultSchedule().stall(61.0, 2), rounds=5)
    assert report.ok, [v.to_json() for v in report.violations]
    assert report.chaos["stall_rounds"] == 2
    assert campaign.adapter.pending() == 0  # final flush drained the wedge


def test_clock_skip_and_wire_faults():
    sched = (FaultSchedule()
             .delay(10.0, 0.4).garble(10.0, 0.3)
             .clock_skip(125.0, 500.0).heal(200.0))
    campaign, report = run_campaign(sched, rounds=5)
    assert report.ok, [v.to_json() for v in report.violations]
    assert report.chaos["clock_skips"] == 1
    faults = report.store["faults"]
    assert faults["delayed"] + faults["garbled"] > 0
    # Injected wire faults cost virtual time: the campaign clock ran
    # past the skip plus the base 5 rounds.
    assert campaign.clock.now > 500.0


def test_campaign_is_byte_identical(tmp_path):
    sched = (FaultSchedule()
             .shard_down(30.0, 2).delay(65.0, 0.3)
             .checkpoint_restore(125.0).shard_up(150.0, 2))

    def one(tag):
        campaign, report = run_campaign(sched, rounds=5, seed=7)
        path = tmp_path / f"{tag}.jsonl"
        campaign.export_trace(str(path))
        return report.dumps(), path.read_bytes()

    report_a, trace_a = one("a")
    report_b, trace_b = one("b")
    assert report_a == report_b
    assert trace_a == trace_b


def test_telemetry_renders_chaos_store():
    campaign, _ = run_campaign(FaultSchedule().heal(0.0), rounds=2)
    snapshot = campaign.telemetry()
    text = snapshot.render() if hasattr(snapshot, "render") else str(snapshot)
    assert "chaos://shard0" in text or "chaos" in text.lower()


@pytest.mark.chaos
@pytest.mark.timeout(600)
def test_fixed_seed_fuzz_campaigns_are_green():
    """The tier-1 randomized layer: REPRO_CHAOS_CAMPAIGNS seeded campaigns.

    Shrinking is disabled — a healthy system should never need it, and
    if a campaign does fail we want the full schedule in the report.
    """
    fuzzer = CampaignFuzzer(seed=2021, rounds=4)
    result = fuzzer.run(CAMPAIGNS, shrink=False)
    bad = [(f.campaign_index, [v.to_json() for v in f.violations])
           for f in result.failures]
    assert result.ok, bad
    assert len(result.reports) == CAMPAIGNS
