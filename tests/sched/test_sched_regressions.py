"""Regression tests for coordination-layer scheduler bugs.

- The first-match matcher advanced its round-robin cursor on *partial*
  multi-node hits, so a string of failed placements rotated the scan
  start away from nodes that were never used, breaking round-robin
  fairness once capacity freed up.
- ``FluxInstance.cancel`` fired the completion callback with a record
  still in PENDING state when the queue no longer held it
  (``cancel_pending`` returning False), so trackers observed a
  live-looking job that would never run.
- ``Matcher._match_exclusive`` never re-checked the per-node
  ncores/ngpus request against what the vacant node actually owns, so
  an exclusive request larger than a node silently got the whole
  (smaller) node — an under-provisioned allocation instead of a failed
  match.
"""

import pytest

from repro.sched.flux import FluxInstance
from repro.sched.jobspec import JobSpec, JobState
from repro.sched.matcher import Matcher, MatchPolicy
from repro.sched.resources import ResourceGraph, summit_like


class TestFirstMatchCursor:
    def test_failed_multi_node_match_does_not_advance_cursor(self):
        g = summit_like(4)
        m = Matcher(g, MatchPolicy.FIRST_MATCH)
        # Occupy nodes 2 and 3 so only 0 and 1 are feasible.
        m._rr_cursor = 2
        blockers = [m.match(JobSpec(name="blk", exclusive=True)) for _ in range(2)]
        assert all(a is not None for a in blockers)
        assert m._rr_cursor == 0

        # Partial hit: 2 feasible nodes for a 3-node request -> no match.
        assert m.match(JobSpec(name="big", nnodes=3, ncores=1)) is None
        assert m._rr_cursor == 0  # regression: used to jump to 2

        # Once the blockers release, round-robin resumes where it left
        # off — at node 0, which has never run anything.
        for a in blockers:
            m.release(a)
        alloc = m.match(JobSpec(name="one", ncores=1))
        assert alloc.node_ids() == [0]

    def test_successful_matches_still_rotate(self):
        g = summit_like(4)
        m = Matcher(g, MatchPolicy.FIRST_MATCH)
        spec = JobSpec(name="cg-sim", ncores=3, ngpus=1)
        assert [m.match(spec).node_ids()[0] for _ in range(4)] == [0, 1, 2, 3]

    def test_fully_infeasible_match_leaves_cursor_alone(self):
        g = summit_like(2)
        m = Matcher(g, MatchPolicy.FIRST_MATCH)
        assert m.match(JobSpec(name="huge", nnodes=3, ncores=1)) is None
        assert m._rr_cursor == 0


class TestCancelRaceWindow:
    def test_cancel_forces_terminal_state_when_queue_lost_the_record(self):
        flux = FluxInstance(summit_like(1))
        seen = []
        record = flux.submit(
            JobSpec(name="x", ncores=1, duration=10.0),
            on_complete=lambda r: seen.append(r.state),
        )
        # Simulate the race: a cycle in flight popped the record from
        # the queue's books but has not started it yet.
        flux.queue.inbox.remove(record)

        flux.cancel(record.job_id)
        # Regression: the callback used to observe a PENDING record.
        assert seen == [JobState.CANCELLED]
        assert record.state is JobState.CANCELLED
        assert record.end_time is not None
        assert flux.counts()["cancelled"] == 1

    def test_cancel_pending_and_running_still_work(self):
        flux = FluxInstance(summit_like(1))
        states = []
        rec1 = flux.submit(JobSpec(name="a", ncores=1, duration=10.0),
                           on_complete=lambda r: states.append(r.state))
        flux.cancel(rec1.job_id)
        assert rec1.state is JobState.CANCELLED

        rec2 = flux.submit(JobSpec(name="b", ncores=1, duration=10.0),
                           on_complete=lambda r: states.append(r.state))
        flux.loop.run_until(6.0)  # one cycle: rec2 starts
        assert rec2.state is JobState.RUNNING
        flux.cancel(rec2.job_id)
        assert rec2.state is JobState.CANCELLED
        assert states == [JobState.CANCELLED, JobState.CANCELLED]


class TestExclusiveOverRequest:
    """Exclusive means "the whole node" — but the node must still cover
    the per-node request. Summit-like nodes own 44 cores / 6 GPUs."""

    @pytest.mark.parametrize("policy", list(MatchPolicy))
    @pytest.mark.parametrize("partitioned", [True, False])
    def test_exclusive_request_larger_than_node_fails(self, policy, partitioned):
        g = summit_like(4)
        m = Matcher(g, policy=policy, partitioned=partitioned)
        # Regression: this used to hand back a 44-core node for a
        # 100-core exclusive request.
        assert m.match(JobSpec(name="too-big", ncores=100, exclusive=True)) is None
        assert m.match(JobSpec(name="too-gpu", ncores=1, ngpus=7, exclusive=True)) is None
        # The failed attempts must not have claimed anything.
        assert g.free_cores == g.total_cores
        assert g.free_gpus == g.total_gpus

    def test_exclusive_at_exact_node_size_still_takes_whole_node(self):
        g = summit_like(2)
        m = Matcher(g, MatchPolicy.FIRST_MATCH)
        alloc = m.match(JobSpec(name="fits", ncores=44, ngpus=6, exclusive=True))
        assert alloc is not None
        assert alloc.ncores == 44 and alloc.ngpus == 6

    def test_exclusive_under_node_size_gets_all_resources(self):
        # An exclusive 1-core request still receives the full node.
        g = ResourceGraph(nnodes=1, cores_per_node=8, gpus_per_node=2)
        m = Matcher(g, MatchPolicy.LOW_ID_FIRST)
        alloc = m.match(JobSpec(name="whole", ncores=1, exclusive=True))
        assert alloc is not None
        assert alloc.ncores == 8 and alloc.ngpus == 2

    def test_feasibility_mask_agrees_with_match(self):
        g = summit_like(3)
        assert not g.feasible_mask(100, 0, exclusive=True).any()
        assert len(g.feasible_ids(45, 0, True)) == 0
        ids, scanned, skipped = g.first_feasible_partitioned(0, 1, 45, 0, True)
        assert ids == [] and scanned == 0
