"""Regression tests: WM restore side tables and counter thread safety.

Two coordination-layer bugs used to live here:

- ``checkpoint()`` saved the selectors (with their queued candidate
  ids) but not the ``_patch_by_id`` / ``_frame_by_id`` /
  ``_frame_systems`` side tables those ids resolve against, so the
  first selection after ``restore()`` raised KeyError in the round
  driver.
- job bodies run in adapter worker threads and incremented
  ``wm.counters`` without synchronization against the round driver's
  own updates, so counts could be lost under contention.
"""

import threading

import numpy as np

from repro.core.patches import PatchCreator
from repro.core.wm import WorkflowConfig, WorkflowManager
from repro.datastore import KVStore
from repro.ml.encoder import PatchEncoder
from repro.sched.adapter import ThreadAdapter
from repro.sched.jobspec import JobSpec
from repro.sims.cg.forcefield import martini_like
from repro.sims.continuum import ContinuumConfig, ContinuumSim


def make_wm(store=None, max_workers=1, **cfg_kwargs):
    macro = ContinuumSim(ContinuumConfig(grid=16, n_inner=2, n_outer=2,
                                         n_proteins=3, dt=0.25, seed=0))
    store = store if store is not None else KVStore(nservers=2)
    encoder = PatchEncoder(input_dim=2 * 81, latent_dim=9, hidden=(16,),
                           rng=np.random.default_rng(0))
    ff = martini_like(n_lipid_types=2, seed=0)
    config = WorkflowConfig(beads_per_type=10, cg_chunks_per_job=2,
                            cg_steps_per_chunk=10, aa_chunks_per_job=1,
                            aa_steps_per_chunk=10, seed=0, **cfg_kwargs)
    wm = WorkflowManager(
        macro=macro,
        encoder=encoder,
        forcefield=ff,
        store=store,
        adapter=ThreadAdapter(max_workers=max_workers),
        config=config,
        patch_creator=PatchCreator(patch_grid=9, store=store),
    )
    return wm, store


class TestRestoreSideTables:
    def test_restored_wm_selects_pending_candidates_without_crashing(self):
        wm, store = make_wm()
        wm.run(nrounds=2)
        # The regression needs queued candidates at checkpoint time —
        # ids the restored WM will have to resolve into jobs.
        assert wm.patch_selector.ncandidates() > 0
        assert wm.frame_selector.ncandidates() > 0
        wm.checkpoint()
        before = wm.counters_snapshot()

        wm2, _ = make_wm(store=store)
        wm2.restore()
        assert set(wm2._patch_by_id) >= wm2.patch_selector.candidate_ids()
        assert set(wm2._frame_systems) >= wm2.frame_selector.candidate_ids()
        # Used to KeyError in _fill_cg_buffer / _fill_aa_buffer.
        wm2.run(nrounds=2)
        after = wm2.counters_snapshot()
        assert after["patches_selected"] > before["patches_selected"]
        assert after["frames_selected"] >= before["frames_selected"]

    def test_restore_prunes_candidates_without_side_table_entries(self):
        wm, store = make_wm()
        wm.run(nrounds=2)
        assert wm.patch_selector.ncandidates() > 0
        wm.checkpoint()
        # Simulate a checkpoint written before side tables existed.
        store.delete_many(store.keys("wm/checkpoint/patch-table/"))
        store.delete_many(store.keys("wm/checkpoint/frame-table/"))
        store.delete("wm/checkpoint/frame-candidates")

        wm2, _ = make_wm(store=store)
        wm2.restore()
        assert wm2.patch_selector.ncandidates() == 0
        assert wm2.frame_selector.ncandidates() == 0
        assert wm2._frame_by_id == {}
        wm2.run(nrounds=1)  # pipeline keeps working from scratch

    def test_checkpoint_drops_stale_side_table_entries(self):
        wm, store = make_wm()
        wm.run(nrounds=1)
        wm.checkpoint()
        wm.run(nrounds=1)  # selects some of the checkpointed candidates
        wm.checkpoint()
        live = {k.rsplit("/", 1)[1]
                for k in store.keys("wm/checkpoint/patch-table/")}
        assert live == set(wm._patch_by_id)

    def test_wait_false_run_then_checkpoint_strands_nothing(self):
        # Production mode: jobs overlap rounds. A checkpoint taken right
        # after run(wait=False) used to snapshot while setup jobs were
        # still in flight, stranding their patches (popped from the
        # selector, present in no side table) and dropping the prepared
        # ready buffers on restore. A ready target above the sim-slot
        # count guarantees the buffer is non-empty at quiesce regardless
        # of worker timing (with target == slots the sims can legally
        # drain it, which made this test flaky).
        wm, store = make_wm(max_workers=2, cg_ready_target=4, max_cg_sims=1)
        wm.run(nrounds=2, wait=False)
        wm.checkpoint()
        # checkpoint() quiesced: nothing is in flight afterwards.
        assert all(t.nactive() == 0 for t in wm.trackers.values())
        after = wm.counters_snapshot()
        assert len(wm.cg_ready) + len(wm.aa_ready) > 0

        wm2, _ = make_wm(store=store)
        wm2.restore()
        assert wm2.counters_snapshot() == after
        # The prepared systems survived the restart instead of being
        # silently re-simulated (or lost) by the restored WM.
        assert len(wm2.cg_ready) == len(wm.cg_ready)
        assert len(wm2.aa_ready) == len(wm.aa_ready)
        wm2.run(nrounds=1)
        assert wm2.counters_snapshot()["cg_spawned"] >= after["cg_spawned"]

    def test_counters_roundtrip_through_checkpoint(self):
        wm, store = make_wm()
        wm.run(nrounds=2)
        wm.checkpoint()
        wm2, _ = make_wm(store=store)
        wm2.restore()
        assert wm2.counters_snapshot() == wm.counters_snapshot()


class TestCounterThreadSafety:
    def test_every_pipeline_mutation_holds_the_counters_lock(self):
        wm, _ = make_wm(max_workers=4)

        class GuardedDict(dict):
            def __init__(self, data, lock):
                super().__init__(data)
                self.lock = lock
                self.violations = 0

            def __setitem__(self, key, value):
                if not self.lock.locked():
                    self.violations += 1
                super().__setitem__(key, value)

        wm.counters = GuardedDict(wm.counters, wm._counters_lock)
        wm.run(nrounds=2)  # job bodies bump counters from worker threads
        assert wm.counters["cg_finished"] > 0
        assert wm.counters.violations == 0

    def test_concurrent_bumps_via_thread_adapter_lose_nothing(self):
        wm, _ = make_wm()
        adapter = ThreadAdapter(max_workers=8)
        njobs, per_job = 8, 5000
        barrier = threading.Barrier(njobs)

        def body():
            barrier.wait()  # maximize interleaving
            for _ in range(per_job):
                wm._bump("cg_finished")

        for _ in range(njobs):
            adapter.submit(JobSpec(name="bump", ncores=1), fn=body)
        adapter.wait_all()
        adapter.shutdown()
        assert wm.counters_snapshot()["cg_finished"] == njobs * per_job
