"""Tests for sampler checkpoint/restore."""

import numpy as np
import pytest

from repro.datastore import KVStore
from repro.sampling.binned import BinnedSampler, BinSpec
from repro.sampling.fps import FarthestPointSampler
from repro.sampling.persistence import (
    binned_state,
    fps_state,
    load_sampler,
    restore_binned,
    restore_fps,
    save_sampler,
)
from repro.sampling.points import Point


def P(pid, *coords):
    return Point(id=pid, coords=np.array(coords, dtype=float))


def make_fps(seed=0, nadd=30, nselect=4):
    s = FarthestPointSampler(dim=2, queues=["ras", "ras-raf"], queue_cap=100)
    rng = np.random.default_rng(seed)
    for i in range(nadd):
        s.add(Point(id=f"p{i}", coords=rng.random(2)),
              queue="ras" if i % 2 else "ras-raf")
    if nselect:
        s.select(nselect)
    return s


def make_binned(seed=0, nadd=50, nselect=5):
    s = BinnedSampler([BinSpec(0, 1, 4)] * 3, randomness=0.2,
                      rng=np.random.default_rng(seed))
    rng = np.random.default_rng(seed + 1)
    for i in range(nadd):
        s.add(Point(id=f"p{i}", coords=rng.random(3)))
    if nselect:
        s.select(nselect)
    return s


class TestFPSPersistence:
    def test_restore_reproduces_future_selections(self):
        original = make_fps()
        state = fps_state(original)
        fresh = FarthestPointSampler(dim=2, queues=["ras", "ras-raf"], queue_cap=100)
        restore_fps(fresh, state)
        # Continue both identically: the restored sampler makes the
        # exact same future picks.
        a = [p.id for p in original.select(5)]
        b = [p.id for p in fresh.select(5)]
        assert a == b

    def test_restore_preserves_counts(self):
        original = make_fps()
        fresh = FarthestPointSampler(dim=2, queues=["ras", "ras-raf"], queue_cap=100)
        restore_fps(fresh, fps_state(original))
        assert fresh.ncandidates() == original.ncandidates()
        assert fresh.nselected() == original.nselected()
        assert fresh.queue_sizes() == original.queue_sizes()

    def test_dim_mismatch_rejected(self):
        state = fps_state(make_fps())
        with pytest.raises(ValueError, match="dim"):
            restore_fps(FarthestPointSampler(dim=3, queues=["ras", "ras-raf"]), state)

    def test_queue_mismatch_rejected(self):
        state = fps_state(make_fps())
        with pytest.raises(ValueError, match="queue"):
            restore_fps(FarthestPointSampler(dim=2, queues=["other"]), state)

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="fps"):
            restore_fps(make_fps(), binned_state(make_binned()))


class TestBinnedPersistence:
    def test_restore_reproduces_future_selections(self):
        original = make_binned()
        fresh = BinnedSampler([BinSpec(0, 1, 4)] * 3, randomness=0.2,
                              rng=np.random.default_rng(999))
        restore_binned(fresh, binned_state(original))
        a = [p.id for p in original.select(8)]
        b = [p.id for p in fresh.select(8)]
        assert a == b  # includes the RNG state

    def test_restore_preserves_histogram(self):
        original = make_binned()
        fresh = BinnedSampler([BinSpec(0, 1, 4)] * 3, randomness=0.2)
        restore_binned(fresh, binned_state(original))
        np.testing.assert_array_equal(fresh.selected_counts, original.selected_counts)
        assert fresh.occupancy() == original.occupancy()

    def test_spec_mismatch_rejected(self):
        state = binned_state(make_binned())
        other = BinnedSampler([BinSpec(0, 2, 4)] * 3)
        with pytest.raises(ValueError, match="specs"):
            restore_binned(other, state)


class TestStoreRoundtrip:
    @pytest.mark.parametrize("maker,factory", [
        (make_fps, lambda: FarthestPointSampler(dim=2, queues=["ras", "ras-raf"],
                                                queue_cap=100)),
        (make_binned, lambda: BinnedSampler([BinSpec(0, 1, 4)] * 3, randomness=0.2)),
    ])
    def test_save_load_through_store(self, maker, factory):
        store = KVStore(nservers=2)
        original = maker()
        save_sampler(store, "wm/selector", original)
        fresh = factory()
        load_sampler(store, "wm/selector", fresh)
        assert [p.id for p in fresh.select(3)] == [p.id for p in original.select(3)]

    def test_unsupported_type(self):
        store = KVStore()
        with pytest.raises(TypeError):
            save_sampler(store, "x", object())
