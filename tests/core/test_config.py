"""Tests for configuration-file loading and validation."""

import pytest

from repro.app.builder import build_application
from repro.core.campaign import CampaignConfig, CampaignSimulator, RunSpec
from repro.core.config import (
    ConfigError,
    application_kwargs,
    campaign_config,
    dataclass_from_mapping,
    load_config_file,
    transport_config,
    workflow_config,
)
from repro.core.wm import WorkflowConfig
from repro.datastore.netkv import TransportConfig

TOML_DOC = """
[application]
store_url = "kv://4"
n_lipid_types = 2
seed = 7

[workflow]
max_cg_sims = 3
cg_ready_target = 4
beads_per_type = 8

[campaign]
cg_gpu_fraction = 0.7
seed = 9

[[campaign.ledger]]
nnodes = 10
walltime_hours = 2
count = 1

[[campaign.ledger]]
nnodes = 20
walltime_hours = 3
count = 2
"""


@pytest.fixture
def toml_path(tmp_path):
    p = tmp_path / "mummi.toml"
    p.write_text(TOML_DOC)
    return str(p)


class TestLoading:
    def test_toml_roundtrip(self, toml_path):
        doc = load_config_file(toml_path)
        assert doc["application"]["store_url"] == "kv://4"
        assert len(doc["campaign"]["ledger"]) == 2

    def test_json_roundtrip(self, tmp_path):
        p = tmp_path / "mummi.json"
        p.write_text('{"workflow": {"max_cg_sims": 5}}')
        doc = load_config_file(str(p))
        assert workflow_config(doc).max_cg_sims == 5

    def test_missing_file(self):
        with pytest.raises(ConfigError, match="cannot read"):
            load_config_file("/nonexistent/x.toml")

    def test_bad_toml(self, tmp_path):
        p = tmp_path / "bad.toml"
        p.write_text("[unclosed")
        with pytest.raises(ConfigError, match="invalid TOML"):
            load_config_file(str(p))

    def test_bad_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{nope}")
        with pytest.raises(ConfigError, match="invalid JSON"):
            load_config_file(str(p))


class TestDataclassMapping:
    def test_defaults_apply(self):
        cfg = dataclass_from_mapping(WorkflowConfig, {})
        assert cfg == WorkflowConfig()

    def test_unknown_key_rejected_with_hint(self):
        with pytest.raises(ConfigError, match="max_cg_sims"):
            dataclass_from_mapping(WorkflowConfig, {"max_cg_simz": 3})

    def test_int_promoted_to_float(self):
        cfg = dataclass_from_mapping(CampaignConfig, {"cg_gpu_fraction": 1})
        assert cfg.cg_gpu_fraction == 1.0

    def test_list_promoted_to_tuple(self):
        cfg = dataclass_from_mapping(CampaignConfig, {"aa_cap_ns_range": [40, 50]})
        assert cfg.aa_cap_ns_range == (40.0, 50.0) or cfg.aa_cap_ns_range == (40, 50)

    def test_dataclass_validation_propagates(self):
        with pytest.raises(ConfigError):
            dataclass_from_mapping(RunSpec, {"nnodes": 10})  # missing fields


class TestSections:
    def test_workflow_section(self, toml_path):
        cfg = workflow_config(load_config_file(toml_path))
        assert cfg.max_cg_sims == 3
        assert cfg.cg_ready_target == 4
        assert cfg.seed == 0  # default preserved

    def test_campaign_section_with_ledger(self, toml_path):
        cfg = campaign_config(load_config_file(toml_path))
        assert cfg.cg_gpu_fraction == 0.7
        assert cfg.ledger == (RunSpec(10, 2, 1), RunSpec(20, 3, 2))

    def test_campaign_section_default_ledger(self):
        cfg = campaign_config({"campaign": {"seed": 5}})
        assert len(cfg.ledger) == 5  # the paper ledger

    def test_application_kwargs(self, toml_path):
        kwargs = application_kwargs(load_config_file(toml_path))
        assert kwargs["store_url"] == "kv://4"
        assert isinstance(kwargs["workflow"], WorkflowConfig)

    def test_application_unknown_key(self):
        with pytest.raises(ConfigError, match="store_urll"):
            application_kwargs({"application": {"store_urll": "kv://"}})

    def test_transport_section(self):
        cfg = transport_config({"transport": {"op_timeout": 2, "retries": 6,
                                              "backoff_max": 0.5}})
        assert cfg == TransportConfig(op_timeout=2.0, retries=6,
                                      backoff_max=0.5)
        assert cfg.connect_timeout == 2.0  # default preserved

    def test_transport_section_defaults(self):
        assert transport_config({}) == TransportConfig()

    def test_transport_section_rejects_unknown_and_invalid(self):
        with pytest.raises(ConfigError, match="retrys"):
            transport_config({"transport": {"retrys": 3}})
        with pytest.raises(ConfigError):
            transport_config({"transport": {"retries": -1}})
        with pytest.raises(ConfigError):
            transport_config({"transport": {"jitter": 2.0}})


class TestJobTypes:
    DOC = {
        "jobs": {
            "cg-sim": {"ncores": 3, "ngpus": 1, "duration_hours_mean": 24,
                       "duration_hours_std": 2},
            "createsim": {"ncores": 24, "duration_hours": 1.5, "max_retries": 3},
        }
    }

    def test_sections_become_configs(self):
        from repro.core.config import job_types

        types = job_types(self.DOC)
        assert set(types) == {"cg-sim", "createsim"}
        assert types["cg-sim"].ngpus == 1
        assert types["createsim"].max_retries == 3

    def test_fixed_duration_sampler(self):
        from repro.core.config import job_types
        import numpy as np

        sampler = job_types(self.DOC)["createsim"].duration_sampler
        assert sampler(np.random.default_rng(0)) == 1.5 * 3600

    def test_normal_duration_sampler(self):
        from repro.core.config import job_types
        import numpy as np

        sampler = job_types(self.DOC)["cg-sim"].duration_sampler
        rng = np.random.default_rng(0)
        draws = np.array([sampler(rng) for _ in range(200)])
        assert abs(draws.mean() - 24 * 3600) < 2 * 3600
        assert draws.std() > 0

    def test_conflicting_durations_rejected(self):
        from repro.core.config import job_types

        with pytest.raises(ConfigError, match="OR"):
            job_types({"jobs": {"x": {"ncores": 1, "duration_hours": 1,
                                      "duration_hours_mean": 2}}})

    def test_unknown_job_key_rejected(self):
        from repro.core.config import job_types

        with pytest.raises(ConfigError, match="gpus_wanted"):
            job_types({"jobs": {"x": {"ncores": 1, "gpus_wanted": 1}}})

    def test_job_types_drive_a_tracker(self):
        from repro.core.config import job_types
        from repro.core.jobs import JobTracker
        from repro.sched.adapter import FluxAdapter
        from repro.sched.flux import FluxInstance
        from repro.sched.resources import summit_like
        from repro.util.clock import EventLoop

        loop = EventLoop()
        flux = FluxInstance(summit_like(1), loop)
        cfg = job_types({"jobs": {"cg-sim": {"ncores": 3, "ngpus": 1,
                                             "duration_hours": 0.01}}})["cg-sim"]
        tracker = JobTracker(cfg, FluxAdapter(flux))
        tracker.launch("sim0")
        loop.run_until(3600.0)
        assert len(tracker.completed) == 1


class TestEndToEndFromFile:
    def test_build_and_run_application_from_config(self, toml_path):
        doc = load_config_file(toml_path)
        app = build_application(**application_kwargs(doc))
        counters = app.run(nrounds=1)
        assert counters["snapshots"] == 1

    def test_run_campaign_from_config(self, toml_path):
        doc = load_config_file(toml_path)
        result = CampaignSimulator(campaign_config(doc)).run()
        assert result.total_node_hours() == 10 * 2 + 20 * 3 * 2
