"""Nearest-neighbour backends for the farthest-point sampler.

The paper ranks patch candidates with "approximate nearest neighbor
queries (with L2 distances) powered by the FAISS framework". FAISS is
not available offline, so three interchangeable backends stand in:

- :class:`ExactIndex` — brute-force vectorized L2 (ground truth).
- :class:`KDTreeIndex` — :class:`scipy.spatial.cKDTree` (exact, fast
  at low dimension like the 9-D patch encoding).
- :class:`ProjectionIndex` — an IVF-style approximate index: coarse
  quantization by random projection, candidate search restricted to
  the ``nprobe`` nearest cells. Trades recall for speed exactly the way
  FAISS's IVF indexes do.

All backends answer "distance from each query to its nearest indexed
point", which is the only query farthest-point sampling needs — and all
support **incremental insertion** (:meth:`NeighborIndex.add`) so the
selection loop never pays a full rebuild per pick:

- ``ExactIndex`` appends into a geometrically-grown contiguous buffer;
- ``KDTreeIndex`` buffers pending points and answers queries with a
  brute-force overlay, folding the buffer into a fresh tree only when
  it outgrows the tree (amortized, never once-per-pick);
- ``ProjectionIndex`` inserts straight into the nearest coarse cell
  once its anchor set is established (it retrains — resamples anchors —
  only while it holds fewer points than ``ncells``).

:meth:`NeighborIndex.delta_distance` is the incremental counterpart of
:meth:`~NeighborIndex.nearest_distance`: the distance from each query
to the nearest of a *few newly added* points only, under the same
visibility rule the backend uses for full queries (for the projection
index a new point is invisible to queries that would not probe its
cell). Each backend uses the same floating-point formula for both
paths, so folding deltas with an elementwise ``min`` reproduces the
full query exactly — that is what makes the sampler's incremental
recurrence equivalent to recomputing from scratch.

``epoch`` counts semantic rebuilds: it bumps whenever previously
returned distances may no longer be what the index would answer now
(an explicit :meth:`~NeighborIndex.build`, or a projection-anchor
retrain). Callers caching distances must recompute when it changes.
The KD-tree's internal buffer flush does *not* bump it — the indexed
point set and the answers are unchanged.
"""

from __future__ import annotations

import abc
from dataclasses import asdict, dataclass
from typing import List, Optional

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["IndexStats", "NeighborIndex", "ExactIndex", "KDTreeIndex",
           "ProjectionIndex"]


@dataclass
class IndexStats:
    """Operation counters for one index (perf regression guards).

    ``distance_evals`` counts candidate–point pairs evaluated by the
    brute-force code paths (exact matrices, KD-tree overlays, probed
    projection cells); pairs visited inside scipy's tree traversal are
    not observable and are excluded. ``builds`` counts semantic
    (re)builds, ``flushes`` the KD-tree's answer-preserving buffer
    folds, ``adds`` incrementally inserted points, ``queries`` answered
    query rows.
    """

    builds: int = 0
    flushes: int = 0
    adds: int = 0
    queries: int = 0
    distance_evals: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


def _d2_matrix(queries: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Squared L2 distances, shape (nq, np), via the expansion
    ``||q - p||^2 = ||q||^2 - 2 q.p + ||p||^2`` (no (nq, np, dim)
    difference tensor is ever materialized)."""
    q2 = np.einsum("ij,ij->i", queries, queries)[:, None]
    p2 = np.einsum("ij,ij->i", points, points)[None, :]
    d2 = q2 - 2.0 * queries @ points.T + p2
    np.maximum(d2, 0.0, out=d2)
    return d2


class _GrowingMatrix:
    """Contiguous (n, dim) float64 rows with amortized O(1) append."""

    __slots__ = ("_buf", "n")

    def __init__(self, dim: int, capacity: int = 64) -> None:
        self._buf = np.empty((max(capacity, 1), dim), dtype=np.float64)
        self.n = 0

    @property
    def dim(self) -> int:
        return self._buf.shape[1]

    def append(self, rows: np.ndarray) -> None:
        k = rows.shape[0]
        cap = self._buf.shape[0]
        if self.n + k > cap:
            new_cap = max(2 * cap, self.n + k)
            grown = np.empty((new_cap, self.dim), dtype=np.float64)
            grown[: self.n] = self._buf[: self.n]
            self._buf = grown
        self._buf[self.n : self.n + k] = rows
        self.n += k

    def view(self) -> np.ndarray:
        return self._buf[: self.n]


class NeighborIndex(abc.ABC):
    """Index over a set of points; queried for nearest distances.

    Supports both bulk :meth:`build` and incremental :meth:`add`;
    subclasses maintain :attr:`stats` counters and bump :attr:`epoch`
    whenever answers to past queries may have changed for any reason
    other than monotone insertion.
    """

    def __init__(self) -> None:
        self.stats = IndexStats()
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Bumps on semantic rebuilds (see module docstring)."""
        return self._epoch

    @abc.abstractmethod
    def build(self, coords: np.ndarray) -> None:
        """(Re)build the index over ``coords`` of shape (n, dim)."""

    @abc.abstractmethod
    def add(self, coords: np.ndarray) -> None:
        """Insert rows of ``coords`` ((k, dim) or (dim,)) incrementally."""

    @abc.abstractmethod
    def nearest_distance(self, queries: np.ndarray) -> np.ndarray:
        """L2 distance from each query row to its nearest indexed point.

        Returns +inf for every query when the index is empty.
        """

    @abc.abstractmethod
    def delta_distance(self, queries: np.ndarray, new_coords: np.ndarray) -> np.ndarray:
        """Distance from each query to the nearest of ``new_coords`` only,
        under this backend's visibility rule (see module docstring).
        ``new_coords`` must already have been :meth:`add`-ed.
        """

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of indexed points."""


def _empty_result(queries: np.ndarray) -> np.ndarray:
    return np.full(queries.shape[0], np.inf)


class ExactIndex(NeighborIndex):
    """Brute force: one broadcasted distance matrix per query batch."""

    def __init__(self) -> None:
        super().__init__()
        self._coords: Optional[_GrowingMatrix] = None

    def build(self, coords: np.ndarray) -> None:
        coords = np.atleast_2d(np.asarray(coords, dtype=np.float64))
        self._coords = _GrowingMatrix(coords.shape[1], capacity=max(coords.shape[0], 64))
        if coords.shape[0]:
            self._coords.append(coords)
        self.stats.builds += 1
        self._epoch += 1

    def add(self, coords: np.ndarray) -> None:
        coords = np.atleast_2d(np.asarray(coords, dtype=np.float64))
        if self._coords is None:
            self._coords = _GrowingMatrix(coords.shape[1])
        self._coords.append(coords)
        self.stats.adds += coords.shape[0]

    @property
    def size(self) -> int:
        return 0 if self._coords is None else self._coords.n

    def nearest_distance(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(queries)
        self.stats.queries += queries.shape[0]
        if self.size == 0:
            return _empty_result(queries)
        pts = self._coords.view()
        self.stats.distance_evals += queries.shape[0] * pts.shape[0]
        return np.sqrt(_d2_matrix(queries, pts).min(axis=1))

    def delta_distance(self, queries: np.ndarray, new_coords: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(queries)
        new_coords = np.atleast_2d(np.asarray(new_coords, dtype=np.float64))
        if new_coords.shape[0] == 0:
            return _empty_result(queries)
        self.stats.distance_evals += queries.shape[0] * new_coords.shape[0]
        return np.sqrt(_d2_matrix(queries, new_coords).min(axis=1))


class KDTreeIndex(NeighborIndex):
    """scipy cKDTree backend — exact, sublinear queries at low dim.

    Incremental inserts land in a pending buffer answered by a
    brute-force overlay; the buffer folds into a fresh tree only when
    it outgrows ``max(pending_cap, tree size)``, so rebuild cost is
    amortized over many inserts instead of paid per pick.
    """

    def __init__(self, pending_cap: int = 64) -> None:
        super().__init__()
        if pending_cap < 1:
            raise ValueError("pending_cap must be >= 1")
        self.pending_cap = pending_cap
        self._tree: Optional[cKDTree] = None
        self._base: Optional[np.ndarray] = None
        self._pending: Optional[_GrowingMatrix] = None

    def build(self, coords: np.ndarray) -> None:
        coords = np.atleast_2d(np.asarray(coords, dtype=np.float64))
        self._base = coords.copy() if coords.shape[0] else None
        self._tree = cKDTree(self._base) if self._base is not None else None
        self._pending = None
        self.stats.builds += 1
        self._epoch += 1

    def add(self, coords: np.ndarray) -> None:
        coords = np.atleast_2d(np.asarray(coords, dtype=np.float64))
        if self._pending is None:
            self._pending = _GrowingMatrix(coords.shape[1])
        self._pending.append(coords)
        self.stats.adds += coords.shape[0]
        base_n = 0 if self._base is None else self._base.shape[0]
        if self._pending.n >= max(self.pending_cap, base_n):
            self._flush()

    def _flush(self) -> None:
        """Fold pending points into the tree (answers unchanged — the
        indexed set is identical, so the epoch does not bump)."""
        pend = self._pending.view()
        self._base = pend.copy() if self._base is None else np.vstack([self._base, pend])
        self._tree = cKDTree(self._base)
        self._pending = None
        self.stats.flushes += 1

    @property
    def size(self) -> int:
        n = 0 if self._base is None else self._base.shape[0]
        return n + (0 if self._pending is None else self._pending.n)

    def nearest_distance(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(queries)
        self.stats.queries += queries.shape[0]
        if self.size == 0:
            return _empty_result(queries)
        if self._tree is not None:
            dists, _ = self._tree.query(queries, k=1)
            dists = np.atleast_1d(dists)
        else:
            dists = _empty_result(queries)
        if self._pending is not None and self._pending.n:
            pend = self._pending.view()
            self.stats.distance_evals += queries.shape[0] * pend.shape[0]
            overlay = np.sqrt(_d2_matrix(queries, pend).min(axis=1))
            dists = np.minimum(dists, overlay)
        return dists

    def delta_distance(self, queries: np.ndarray, new_coords: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(queries)
        new_coords = np.atleast_2d(np.asarray(new_coords, dtype=np.float64))
        if new_coords.shape[0] == 0:
            return _empty_result(queries)
        self.stats.distance_evals += queries.shape[0] * new_coords.shape[0]
        return np.sqrt(_d2_matrix(queries, new_coords).min(axis=1))


class ProjectionIndex(NeighborIndex):
    """IVF-style approximate index.

    Points are assigned to ``ncells`` coarse cells by nearest random
    anchor; a query searches only its ``nprobe`` closest cells. With
    ``nprobe == ncells`` the result is exact.

    Incremental :meth:`add` inserts into the nearest existing cell; the
    anchor set retrains (a semantic rebuild, bumping :attr:`epoch`)
    only while the index holds fewer points than ``ncells``.
    """

    def __init__(self, ncells: int = 16, nprobe: int = 2, seed: int = 0) -> None:
        super().__init__()
        if ncells < 1 or not 1 <= nprobe:
            raise ValueError("ncells >= 1 and nprobe >= 1 required")
        self.ncells = ncells
        self.nprobe = min(nprobe, ncells)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._coords: Optional[_GrowingMatrix] = None
        self._anchors: Optional[np.ndarray] = None
        self._cell_members: List[List[int]] = []

    def build(self, coords: np.ndarray) -> None:
        coords = np.atleast_2d(np.asarray(coords, dtype=np.float64))
        n = coords.shape[0]
        self._coords = _GrowingMatrix(coords.shape[1], capacity=max(n, 64))
        self.stats.builds += 1
        self._epoch += 1
        if n == 0:
            self._anchors = None
            self._cell_members = []
            return
        self._coords.append(coords)
        ncells = min(self.ncells, n)
        anchor_rows = self._rng.choice(n, size=ncells, replace=False)
        self._anchors = coords[anchor_rows].copy()
        assign = self._nearest_anchor(coords)
        self._cell_members = [list(np.nonzero(assign == c)[0]) for c in range(ncells)]

    def add(self, coords: np.ndarray) -> None:
        coords = np.atleast_2d(np.asarray(coords, dtype=np.float64))
        k = coords.shape[0]
        if k == 0:
            return
        self.stats.adds += k
        nanchors = 0 if self._anchors is None else self._anchors.shape[0]
        if self._coords is None or nanchors < min(self.ncells, self._coords.n + k):
            # Anchor set still undersized: retrain over everything (cheap —
            # only happens while size < ncells). build() bumps the epoch
            # and re-counts its own build, so callers' caches invalidate.
            existing = self._coords.view() if self._coords is not None else np.empty((0, coords.shape[1]))
            self.build(np.vstack([existing, coords]) if existing.shape[0] else coords)
            return
        start = self._coords.n
        self._coords.append(coords)
        assign = self._nearest_anchor(coords)
        for i, c in enumerate(assign):
            self._cell_members[int(c)].append(start + i)

    # --- shared anchor math (one home for the distance computation) ----------

    def _anchor_d2(self, points: np.ndarray) -> np.ndarray:
        """Squared distances from each point to every anchor."""
        return _d2_matrix(points, self._anchors)

    def _nearest_anchor(self, points: np.ndarray) -> np.ndarray:
        return self._anchor_d2(points).argmin(axis=1)

    def _probe_cells(self, points: np.ndarray) -> np.ndarray:
        """The ``nprobe`` closest cells per point, shape (n, nprobe)."""
        return self._anchor_d2(points).argsort(axis=1, kind="stable")[:, : self.nprobe]

    @property
    def size(self) -> int:
        return 0 if self._coords is None else self._coords.n

    def nearest_distance(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(queries)
        self.stats.queries += queries.shape[0]
        if self.size == 0 or self._anchors is None:
            return _empty_result(queries)
        coords = self._coords.view()
        probed = self._probe_cells(queries)
        out2 = np.full(queries.shape[0], np.inf)
        # Vectorized multi-probe: one distance block per *cell* (ncells is
        # a small constant), not one Python iteration per query.
        for c, members in enumerate(self._cell_members):
            if not members:
                continue
            qsel = np.nonzero((probed == c).any(axis=1))[0]
            if qsel.size == 0:
                continue
            rows = np.asarray(members, dtype=np.int64)
            self.stats.distance_evals += qsel.size * rows.size
            d2 = _d2_matrix(queries[qsel], coords[rows]).min(axis=1)
            out2[qsel] = np.minimum(out2[qsel], d2)
        return np.sqrt(out2, out=out2)

    def delta_distance(self, queries: np.ndarray, new_coords: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(queries)
        new_coords = np.atleast_2d(np.asarray(new_coords, dtype=np.float64))
        if new_coords.shape[0] == 0 or self._anchors is None:
            return _empty_result(queries)
        self.stats.distance_evals += queries.shape[0] * new_coords.shape[0]
        d2 = _d2_matrix(queries, new_coords)
        # A new point is visible to a query only if the query probes the
        # cell the point was inserted into — same rule as the full query.
        cells_new = self._nearest_anchor(new_coords)
        probed = self._probe_cells(queries)
        visible = (probed[:, :, None] == cells_new[None, None, :]).any(axis=1)
        d2[~visible] = np.inf
        return np.sqrt(d2.min(axis=1))
