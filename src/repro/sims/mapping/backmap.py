"""Backmapping: refine a CG configuration into an all-atom system.

§4.1 (4): "retrieves a selected snapshot from the ddcMD trajectory,
converts the CG to the AA model using a modified version of the
backward tool, performs cycles of energy minimization and
position-restrained MD using GROMACS, and finally converts the data
format from GROMACS to AMBER using ParmEd."

Our pipeline mirrors each stage:

1. **backward analogue** — every CG bead expands to ``atoms_per_bead``
   atoms arranged on a small ring around the bead position, bonded into
   a local cluster; consecutive protein beads' first atoms become the
   bonded backbone chain;
2. **minimization + restrained MD** — alternating cycles on the AA
   engine with the backbone restrained to its backmapped geometry;
3. **format conversion** — the result is packaged as an
   :class:`~repro.sims.mapping.systems.AASystem` (our AMBER input).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sims.aa.engine import AAConfig, AASim
from repro.sims.cg.forcefield import CGForceField
from repro.sims.mapping.systems import AASystem, CGSystem

__all__ = ["backmap"]


def backmap(
    system: CGSystem,
    forcefield: CGForceField,
    frame_id: str = "",
    atoms_per_bead: int = 3,
    ring_radius: float = 0.15,
    cycles: int = 2,
    minimize_steps: int = 20,
    restrained_steps: int = 10,
    seed: int = 0,
) -> AASystem:
    """Expand a CG system to atoms and relax it (the 2-hour setup job)."""
    if atoms_per_bead < 1:
        raise ValueError("atoms_per_bead must be >= 1")
    rng = np.random.default_rng(seed)
    nbeads = system.nparticles
    natoms = nbeads * atoms_per_bead

    # Stage 1: geometric expansion (backward analogue).
    angles = 2 * np.pi * np.arange(atoms_per_bead) / atoms_per_bead
    offsets = ring_radius * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    positions = (
        system.positions[:, None, :] + offsets[None, :, :]
    ).reshape(natoms, 2) + rng.normal(0, 0.01, size=(natoms, 2))

    bonds = []
    # Intra-bead ring bonds keep each atom cluster together.
    ring_rest = 2 * ring_radius * np.sin(np.pi / atoms_per_bead) if atoms_per_bead > 1 else 0.0
    for b in range(nbeads):
        base = b * atoms_per_bead
        for k in range(atoms_per_bead - 1):
            bonds.append([base + k, base + k + 1, ring_rest])
        if atoms_per_bead > 2:
            bonds.append([base + atoms_per_bead - 1, base, ring_rest])

    # Protein backbone: first atom of each protein bead, chained in CG
    # bond order.
    prot_ids = {forcefield.index_of(nm) for nm in forcefield.protein_type_names()}
    protein_beads = [b for b in range(nbeads) if int(system.type_ids[b]) in prot_ids]
    backbone = np.array([b * atoms_per_bead for b in protein_beads], dtype=np.int64)
    for i, j, rest in system.bonds:
        bonds.append([int(i) * atoms_per_bead, int(j) * atoms_per_bead, float(rest)])

    bonds_arr = np.asarray(bonds, dtype=np.float64) if bonds else np.empty((0, 3))

    # Stage 2: minimization + position-restrained MD cycles.
    restrained = np.zeros(natoms, dtype=bool)
    restrained[backbone] = True
    sim = AASim(
        positions,
        bonds_arr,
        backbone,
        config=AAConfig(box=system.box, seed=seed),
        restrained=restrained,
    )
    for _ in range(cycles):
        sim.minimize(nsteps=minimize_steps)
        sim.step(restrained_steps)
    sim.release_restraints()

    # Stage 3: package as the AA input (ParmEd analogue).
    return AASystem(
        positions=sim.positions.copy(),
        bonds=bonds_arr,
        backbone=backbone,
        box=system.box,
        source_frame=frame_id,
    )
