"""Patch-queue routing: which selector queue a patch samples from.

§4.4 Task 2: "we incorporate five in-memory queues in the Patch
Selector for sampling different protein configurations." The
configuration classes are combinations of the protein's state and its
local crowding; keeping one capped queue per class guarantees every
class keeps contributing selections even when one dominates the
candidate stream.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from repro.core.patches import Patch
from repro.sims.continuum.proteins import ProteinState

__all__ = ["TWO_QUEUES", "FIVE_QUEUES", "state_router", "five_queue_router"]

TWO_QUEUES: Tuple[str, ...] = ("ras", "ras-raf")

FIVE_QUEUES: Tuple[str, ...] = (
    "ras-isolated",
    "ras-paired",
    "ras-crowded",
    "ras-raf-isolated",
    "ras-raf-crowded",
)


def state_router(patch: Patch) -> str:
    """The two-queue default: route by configurational state only."""
    return "ras-raf" if patch.protein_state == ProteinState.RAS_RAF else "ras"


def five_queue_router(patch: Patch) -> str:
    """The paper-shaped five-queue layout: state x local crowding."""
    if patch.protein_state == ProteinState.RAS_RAF:
        return "ras-raf-isolated" if patch.n_neighbors == 0 else "ras-raf-crowded"
    if patch.n_neighbors == 0:
        return "ras-isolated"
    if patch.n_neighbors == 1:
        return "ras-paired"
    return "ras-crowded"
