"""Optimizers over :class:`~repro.ml.nn.MLP` parameters."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.ml.nn import MLP

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, net: MLP, lr: float = 1e-2, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.net = net
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(arr) for _, _, arr in net.parameters()]

    def step(self) -> None:
        """Apply one update from the gradients stored by backward()."""
        grads = self.net.gradients()
        for i, (layer, name, arr) in enumerate(self.net.parameters()):
            if self.momentum:
                self._velocity[i] = self.momentum * self._velocity[i] - self.lr * grads[i]
                arr += self._velocity[i]
            else:
                arr -= self.lr * grads[i]


class Adam:
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        net: MLP,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.net = net
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(arr) for _, _, arr in net.parameters()]
        self._v = [np.zeros_like(arr) for _, _, arr in net.parameters()]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        grads = self.net.gradients()
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for i, (layer, name, arr) in enumerate(self.net.parameters()):
            g = grads[i]
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * g
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * g * g
            m_hat = self._m[i] / b1t
            v_hat = self._v[i] / b2t
            arr -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
