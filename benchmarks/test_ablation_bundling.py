"""Ablation S1 (§4.3): unbundled vs bundled job scheduling.

Paper: the predecessor bundled 4-6 simulations per node-level job; this
prevented per-simulation control and gave a worst-case utilization of
1/6 on Summit. Unbundling costs 6× more jobs but each GPU frees exactly
when its simulation ends; the new stack placed ~100 jobs/min vs the
predecessor's 2040 jobs/hour (~3× improvement).
"""

import numpy as np
from conftest import report

from repro.sched.bundling import bundle_gpu_jobs, bundle_utilization
from repro.sched.flux import FluxInstance
from repro.sched.jobspec import JobSpec, JobState
from repro.sched.matcher import MatchPolicy
from repro.sched.resources import summit_like
from repro.util.clock import EventLoop


def _sim_specs(n, rng):
    durations = rng.lognormal(mean=np.log(7200), sigma=1.0, size=n)
    return [
        JobSpec(name="cg-sim", ncores=3, ngpus=1, duration=float(d), tag=f"s{i}")
        for i, d in enumerate(durations)
    ], durations


def test_ablation_gpu_time_utilization(benchmark):
    """GPU-time utilization of the two strategies over one sim cohort."""
    rng = np.random.default_rng(0)

    def measure():
        _, durations = _sim_specs(1200, rng)
        return bundle_utilization(durations, gpus_per_node=6)

    bundled, unbundled = benchmark(measure)
    report("ablation_bundling_utilization", [
        f"bundled   (6 sims/node job): {bundled:.1%} GPU-time utilization",
        f"unbundled (1 sim = 1 job)  : {unbundled:.0%}",
        f"worst case bundled: {1/6:.1%} (one straggler holds the node)",
    ])
    assert unbundled == 1.0
    assert bundled < 0.75  # skewed durations waste >25% bundled


def test_ablation_end_to_end_gpu_occupancy(benchmark):
    """Run both strategies through the actual scheduler and integrate
    GPU busy-time: unbundled turns GPUs over as sims end."""
    rng = np.random.default_rng(1)

    def run_strategy(bundled: bool):
        loop = EventLoop()
        flux = FluxInstance(summit_like(50), loop, policy=MatchPolicy.FIRST_MATCH)
        specs, durations = _sim_specs(300, np.random.default_rng(1))
        jobs = bundle_gpu_jobs(specs, 6) if bundled else specs
        for spec in jobs:
            flux.submit(spec)
        # Integrate GPU-seconds held by sampling occupancy.
        held = 0.0
        horizon = float(np.max(durations)) + 600
        step = horizon / 200
        while loop.now < horizon:
            loop.run_until(loop.now + step)
            held += flux.graph.used_gpus * step
        busy = float(np.sum(durations))
        return busy / held if held else 0.0

    def both():
        return run_strategy(bundled=True), run_strategy(bundled=False)

    util_bundled, util_unbundled = benchmark.pedantic(both, rounds=1, iterations=1)
    report("ablation_bundling_scheduler", [
        f"scheduler-integrated GPU utilization: bundled {util_bundled:.1%}, "
        f"unbundled {util_unbundled:.1%}",
    ])
    assert util_unbundled > util_bundled * 1.2


def test_ablation_job_count_tradeoff(benchmark):
    """Unbundling multiplies the job count by gpus-per-node — the cost
    the paper accepted ('even at the cost of 6x increase')."""
    specs, _ = _sim_specs(600, np.random.default_rng(2))

    bundles = benchmark(lambda: bundle_gpu_jobs(specs, 6))
    report("ablation_bundling_jobcount", [
        f"600 simulations -> {len(bundles)} bundled jobs vs 600 unbundled "
        f"({600 / len(bundles):.0f}x more jobs unbundled)",
    ])
    assert len(bundles) == 100
