"""Inter-scale mapping: createsim (continuum→CG) and backmapping (CG→AA)."""

from repro.sims.mapping.systems import CGSystem, AASystem
from repro.sims.mapping.createsim import createsim, build_membrane
from repro.sims.mapping.backmap import backmap

__all__ = ["CGSystem", "AASystem", "createsim", "build_membrane", "backmap"]
