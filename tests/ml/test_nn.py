"""Tests for the NumPy neural-net core, including gradient checks."""

import numpy as np
import pytest

from repro.ml.losses import mse_loss, triplet_loss
from repro.ml.nn import MLP, Dense, identity, relu, tanh
from repro.ml.optim import SGD, Adam


class TestActivations:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(relu.fn(x), [0, 0, 2])
        np.testing.assert_array_equal(relu.grad(x), [0, 0, 1])

    def test_tanh_grad(self):
        x = np.array([0.0, 1.0])
        np.testing.assert_allclose(tanh.grad(x), 1 - np.tanh(x) ** 2)

    def test_identity(self):
        x = np.array([3.0])
        assert identity.fn(x)[0] == 3.0
        assert identity.grad(x)[0] == 1.0


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, rng=np.random.default_rng(0))
        out = layer.forward(np.zeros((7, 4)))
        assert out.shape == (7, 3)

    def test_backward_requires_forward(self):
        layer = Dense(2, 2)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 3)


class TestMLPForward:
    def test_shapes(self):
        net = MLP([5, 8, 3], rng=np.random.default_rng(0))
        out = net.forward(np.zeros((10, 5)))
        assert out.shape == (10, 3)

    def test_1d_input_promoted(self):
        net = MLP([5, 3])
        assert net(np.zeros(5)).shape == (1, 3)

    def test_needs_two_dims(self):
        with pytest.raises(ValueError):
            MLP([5])

    def test_nparams(self):
        net = MLP([4, 3, 2])
        assert net.nparams() == (4 * 3 + 3) + (3 * 2 + 2)

    def test_deterministic_given_rng(self):
        a = MLP([4, 3], rng=np.random.default_rng(5))
        b = MLP([4, 3], rng=np.random.default_rng(5))
        x = np.ones((2, 4))
        np.testing.assert_array_equal(a(x), b(x))


def numeric_grad(f, arr, eps=1e-6):
    """Central-difference gradient of scalar f wrt arr (in place)."""
    grad = np.zeros_like(arr)
    it = np.nditer(arr, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = arr[idx]
        arr[idx] = orig + eps
        hi = f()
        arr[idx] = orig - eps
        lo = f()
        arr[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestGradients:
    def test_mse_backprop_matches_finite_differences(self):
        rng = np.random.default_rng(0)
        net = MLP([3, 4, 2], activation=tanh, rng=rng)  # tanh: smooth
        x = rng.random((5, 3))
        y = rng.random((5, 2))

        def loss_fn():
            return mse_loss(net.forward(x), y)[0]

        _, grad = mse_loss(net.forward(x, train=True), y)
        net.backward(grad)
        analytic = net.gradients()
        arrays = [arr for _, _, arr in net.parameters()]
        for arr, g in zip(arrays, analytic):
            numeric = numeric_grad(loss_fn, arr)
            np.testing.assert_allclose(g, numeric, rtol=1e-4, atol=1e-7)

    def test_input_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(1)
        net = MLP([3, 4, 1], activation=tanh, rng=rng)
        x = rng.random((2, 3))
        y = np.zeros((2, 1))
        _, grad = mse_loss(net.forward(x, train=True), y)
        dx = net.backward(grad)

        def loss_fn():
            return mse_loss(net.forward(x), y)[0]

        numeric = numeric_grad(loss_fn, x)
        np.testing.assert_allclose(dx, numeric, rtol=1e-4, atol=1e-7)


class TestLosses:
    def test_mse_zero_at_match(self):
        x = np.ones((2, 3))
        loss, grad = mse_loss(x, x)
        assert loss == 0.0
        np.testing.assert_array_equal(grad, np.zeros_like(x))

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.zeros((1, 2)), np.zeros((2, 2)))

    def test_triplet_zero_when_separated(self):
        a = np.array([[0.0, 0.0]])
        p = np.array([[0.1, 0.0]])
        n = np.array([[10.0, 0.0]])
        loss, ga, gp, gn = triplet_loss(a, p, n, margin=1.0)
        assert loss == 0.0
        assert np.all(ga == 0) and np.all(gp == 0) and np.all(gn == 0)

    def test_triplet_positive_when_violated(self):
        a = np.array([[0.0]])
        p = np.array([[5.0]])
        n = np.array([[0.1]])
        loss, *_ = triplet_loss(a, p, n, margin=1.0)
        assert loss > 0

    def test_triplet_gradients_match_finite_differences(self):
        rng = np.random.default_rng(2)
        a = rng.random((4, 3))
        p = rng.random((4, 3))
        n = rng.random((4, 3))
        loss, ga, gp, gn = triplet_loss(a, p, n, margin=0.5)
        for arr, g in ((a, ga), (p, gp), (n, gn)):
            numeric = numeric_grad(lambda: triplet_loss(a, p, n, margin=0.5)[0], arr)
            np.testing.assert_allclose(g, numeric, rtol=1e-5, atol=1e-8)

    def test_triplet_shape_mismatch(self):
        with pytest.raises(ValueError):
            triplet_loss(np.zeros((1, 2)), np.zeros((1, 2)), np.zeros((1, 3)))


class TestOptimizers:
    def _toy_problem(self, opt_cls, **kwargs):
        rng = np.random.default_rng(3)
        net = MLP([2, 8, 1], activation=tanh, rng=rng)
        x = rng.random((64, 2))
        y = (x[:, :1] + x[:, 1:]) / 2  # easy linear target
        opt = opt_cls(net, **kwargs)
        first = None
        for _ in range(200):
            loss, grad = mse_loss(net.forward(x, train=True), y)
            if first is None:
                first = loss
            net.backward(grad)
            opt.step()
        return first, loss

    def test_sgd_reduces_loss(self):
        first, last = self._toy_problem(SGD, lr=0.1)
        assert last < first * 0.2

    def test_sgd_momentum_reduces_loss(self):
        first, last = self._toy_problem(SGD, lr=0.05, momentum=0.9)
        assert last < first * 0.2

    def test_adam_reduces_loss(self):
        first, last = self._toy_problem(Adam, lr=0.01)
        assert last < first * 0.2

    def test_invalid_hyperparams(self):
        net = MLP([2, 1])
        with pytest.raises(ValueError):
            SGD(net, lr=0)
        with pytest.raises(ValueError):
            SGD(net, lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            Adam(net, lr=-1)


class TestPersistence:
    def test_state_dict_roundtrip(self):
        net = MLP([3, 4, 2], rng=np.random.default_rng(7))
        state = net.state_dict()
        other = MLP([3, 4, 2], rng=np.random.default_rng(99))
        other.load_state_dict(state)
        x = np.random.default_rng(0).random((5, 3))
        np.testing.assert_array_equal(net(x), other(x))

    def test_state_dict_is_a_copy(self):
        net = MLP([2, 2])
        state = net.state_dict()
        state["layer0.W"][:] = 999
        assert not np.any(net.layers[0].W == 999)

    def test_shape_mismatch_rejected(self):
        net = MLP([2, 2])
        bad = MLP([3, 2]).state_dict()
        with pytest.raises(ValueError):
            net.load_state_dict(bad)
