"""The resource matcher (R) and its policies.

§5.2: "R essentially traverses the resource graph in its entirety for
each job, particularly in the beginning when there are many vacant
resources, creating 'too many choices'. We solved this problem by
introducing a first-match policy that assigns the first matching
resource set to a job greedily." The two policies here implement
exactly that trade-off, and :class:`MatchStats` counts the vertices each
one touches so benchmarks can report the speed-up both as visit counts
and as wall time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import trace
from repro.sched.jobspec import JobSpec
from repro.sched.resources import Allocation, Node, ResourceGraph

__all__ = ["MatchPolicy", "MatchStats", "Matcher"]


class MatchPolicy(enum.Enum):
    """How R picks among feasible placements."""

    LOW_ID_FIRST = "low-id-first"
    """Exhaustive: enumerate every feasible node (ranking the whole
    subtree of each), then take the lowest resource ids — the policy the
    campaign ran with, whose full-graph traversal became the 4000-node
    bottleneck."""

    FIRST_MATCH = "first-match"
    """Greedy: take the first feasible node(s), scanning from a rotating
    start position; stops as soon as the request is satisfied — the fix
    that yielded the paper's 670× matcher speed-up."""


@dataclass
class MatchStats:
    """Traversal-cost accounting across match calls."""

    calls: int = 0
    matched: int = 0
    failed: int = 0
    vertices_visited: int = 0

    def visits_per_call(self) -> float:
        return self.vertices_visited / self.calls if self.calls else 0.0


class Matcher:
    """Maps a :class:`JobSpec` to an :class:`Allocation` on a graph.

    The matcher does not claim resources itself; :meth:`match` returns a
    placement proposal and the caller (the queue manager) claims it.
    That split mirrors Flux's Q/R separation and lets the queue model
    synchronous vs asynchronous communication between the two.
    """

    def __init__(self, graph: ResourceGraph, policy: MatchPolicy = MatchPolicy.LOW_ID_FIRST) -> None:
        self.graph = graph
        self.policy = policy
        self.stats = MatchStats()
        self._rr_cursor = 0  # first-match rotating start

    # --- public API ------------------------------------------------------

    def match(self, spec: JobSpec) -> Optional[Allocation]:
        """Propose a placement, or None if the job cannot run now.

        This is the scheduler's hot loop (§5.2's 670× result is about
        exactly this call), so tracing is guarded on
        :func:`repro.trace.enabled` — the disabled cost is one global
        check, held under 5% of the match cost by
        ``benchmarks/test_ext_trace_overhead.py``.
        """
        if not trace.enabled():
            return self._match(spec)
        visited_before = self.stats.vertices_visited
        with trace.span("schedule.match") as sp:
            alloc = self._match(spec)
            sp.set(job=spec.name, policy=self.policy.value,
                   matched=alloc is not None,
                   vertices=self.stats.vertices_visited - visited_before)
        return alloc

    def _match(self, spec: JobSpec) -> Optional[Allocation]:
        self.stats.calls += 1
        if spec.exclusive:
            placement = self._match_exclusive(spec)
        elif spec.nnodes > 1:
            placement = self._match_multi_node(spec)
        else:
            placement = self._match_single_node(spec)
        if placement is None:
            self.stats.failed += 1
            return None
        self.stats.matched += 1
        return self.graph.claim(placement)

    def release(self, alloc: Allocation) -> None:
        self.graph.release(alloc)

    # --- policy internals ----------------------------------------------------

    def _pick_cost(self, node: Node, ncores: int, ngpus: int) -> None:
        """Claiming enumerates only the chosen resources."""
        self.stats.vertices_visited += ncores + ngpus

    def _candidate_nodes(self, spec: JobSpec) -> List[Node]:
        """Feasible nodes under the current policy's traversal rule.

        Feasibility is computed vectorized for speed, but the visit
        counter charges exactly what the equivalent graph walk would:
        the exhaustive policy inspects every node vertex and ranks the
        full subtree of every feasible one ("too many choices"); the
        greedy policy inspects node vertices only up to its last hit.
        """
        graph = self.graph
        subtree = graph.node_subtree_size
        if self.policy is MatchPolicy.LOW_ID_FIRST:
            ids = graph.feasible_ids(spec.ncores, spec.ngpus, spec.exclusive)
            self.stats.vertices_visited += len(graph.nodes)  # every node checked
            self.stats.vertices_visited += len(ids) * (subtree - 1)  # rank feasible subtrees
            return [graph.nodes[i] for i in ids]
        ids, scanned = graph.first_feasible(
            self._rr_cursor, spec.nnodes, spec.ncores, spec.ngpus, spec.exclusive
        )
        self.stats.vertices_visited += scanned
        if len(ids) >= spec.nnodes:
            # Advance only when the request can actually place. A partial
            # multi-node hit must not rotate the cursor, or a string of
            # failed attempts walks it past the few feasible nodes and
            # the next feasible job starts scanning from the wrong spot.
            self._rr_cursor = (ids[-1] + 1) % len(graph.nodes)
        return [graph.nodes[i] for i in ids]

    def _match_single_node(self, spec: JobSpec) -> Optional[List[Tuple[int, List[int], List[int]]]]:
        candidates = self._candidate_nodes(spec)
        if not candidates:
            return None
        node = candidates[0]
        cores, gpus = node.pick(spec.ncores, spec.ngpus)
        self._pick_cost(node, len(cores), len(gpus))
        return [(node.node_id, cores, gpus)]

    def _match_multi_node(self, spec: JobSpec) -> Optional[List[Tuple[int, List[int], List[int]]]]:
        candidates = self._candidate_nodes(spec)
        if len(candidates) < spec.nnodes:
            return None
        placement = []
        for node in candidates[: spec.nnodes]:
            cores, gpus = node.pick(spec.ncores, spec.ngpus)
            self._pick_cost(node, len(cores), len(gpus))
            placement.append((node.node_id, cores, gpus))
        return placement

    def _match_exclusive(self, spec: JobSpec) -> Optional[List[Tuple[int, List[int], List[int]]]]:
        candidates = self._candidate_nodes(spec)
        if len(candidates) < spec.nnodes:
            return None
        placement = []
        for node in candidates[: spec.nnodes]:
            cores = node.free_core_ids()
            gpus = node.free_gpu_ids()
            self._pick_cost(node, len(cores), len(gpus))
            placement.append((node.node_id, cores, gpus))
        return placement
