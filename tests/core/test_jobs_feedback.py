"""Tests for the Job Tracker and the abstract Feedback Manager."""

import numpy as np
import pytest

from repro.core.feedback import FeedbackManager, StoreFeedbackMixin
from repro.core.jobs import JobTracker, JobTypeConfig
from repro.datastore import FSStore, KVStore, TaridxStore
from repro.sched.adapter import FluxAdapter, ThreadAdapter
from repro.sched.flux import FluxInstance
from repro.sched.jobspec import JobState
from repro.sched.resources import summit_like
from repro.util.clock import EventLoop


class TestJobTypeConfig:
    def test_make_spec_carries_tag(self):
        cfg = JobTypeConfig(name="cg-sim", ncores=3, ngpus=1)
        spec = cfg.make_spec("sim42", np.random.default_rng(0))
        assert spec.tag == "sim42"
        assert spec.ngpus == 1
        assert spec.duration is None

    def test_duration_sampler_used(self):
        cfg = JobTypeConfig(name="x", ncores=1,
                            duration_sampler=lambda rng: 123.0)
        spec = cfg.make_spec("t", np.random.default_rng(0))
        assert spec.duration == 123.0

    def test_explicit_duration_wins(self):
        cfg = JobTypeConfig(name="x", ncores=1,
                            duration_sampler=lambda rng: 123.0)
        spec = cfg.make_spec("t", np.random.default_rng(0), duration=5.0)
        assert spec.duration == 5.0


class TestJobTrackerVirtual:
    def _tracker(self, nnodes=1, **kwargs):
        loop = EventLoop()
        flux = FluxInstance(summit_like(nnodes), loop)
        cfg = JobTypeConfig(name="cg-sim", ncores=3, ngpus=1,
                            duration_sampler=lambda rng: 100.0, **kwargs)
        return loop, JobTracker(cfg, FluxAdapter(flux))

    def test_launch_and_complete(self):
        loop, tracker = self._tracker()
        done = []
        tracker.on_success = done.append
        tracker.launch("sim1")
        assert tracker.nactive() == 1
        loop.run_until(500.0)
        assert tracker.nactive() == 0
        assert len(tracker.completed) == 1
        assert done[0].spec.tag == "sim1"

    def test_counts_split_running_pending(self):
        loop, tracker = self._tracker()
        for i in range(8):  # machine holds only 6 GPU jobs
            tracker.launch(f"s{i}")
        loop.run_until(20.0)
        assert tracker.nrunning() == 6
        assert tracker.npending() == 2
        assert sorted(tracker.tags_active()) == [f"s{i}" for i in range(8)]

    def test_cancel_all(self):
        loop, tracker = self._tracker()
        for i in range(3):
            tracker.launch(f"s{i}")
        loop.run_until(20.0)
        assert tracker.cancel_all() == 3
        assert tracker.nactive() == 0


class TestJobTrackerRetries:
    def test_failed_jobs_are_retried_with_same_tag(self):
        adapter = ThreadAdapter(max_workers=1)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("boom")
            return "ok"

        # fn is not re-attached on retry by the tracker (the retry path
        # resubmits a virtual job), so use the flux adapter path for
        # retry-count testing instead.
        loop = EventLoop()
        flux = FluxInstance(summit_like(1), loop)
        tracker = JobTracker(
            JobTypeConfig(name="cg-sim", ncores=1, ngpus=1, max_retries=2,
                          duration_sampler=lambda rng: 50.0),
            FluxAdapter(flux),
        )
        rec = tracker.launch("simX")
        loop.run_until(10.0)
        flux.fail_node(0)  # kills the running job -> FAILED -> retry
        assert tracker.retries_used("simX") == 1
        # The retried job cannot run (node drained) but is tracked.
        assert tracker.nactive() == 1
        adapter.shutdown()

    def test_abandon_after_max_retries(self):
        loop = EventLoop()
        flux = FluxInstance(summit_like(1), loop)
        abandoned = []
        tracker = JobTracker(
            JobTypeConfig(name="cg-sim", ncores=1, ngpus=1, max_retries=1,
                          duration_sampler=lambda rng: 1e9),
            FluxAdapter(flux),
            on_abandon=abandoned.append,
        )
        tracker.launch("simY")
        loop.run_until(10.0)
        flux.fail_node(0)  # attempt 1 fails -> retry queued
        loop.run_until(20.0)
        # Drained node: retry sits pending; undrain, let it run, fail again.
        flux.graph.undrain(0)
        loop.run_until(40.0)
        flux.fail_node(0)
        assert abandoned == ["simY"]
        assert tracker.abandoned == ["simY"]


class RdfAggregator(StoreFeedbackMixin, FeedbackManager):
    """Minimal concrete manager: sums payload bytes as 'aggregation'."""

    def __init__(self, store):
        FeedbackManager.__init__(self)
        StoreFeedbackMixin.__init__(self, store, "rdf/live/", "rdf/done/")
        self.reported = []

    def process(self, items):
        return sum(len(v) for _, v in items)

    def report(self, result):
        self.reported.append(result)


class TestFeedbackManager:
    @pytest.fixture(params=["fs", "kv", "taridx"])
    def store(self, request, tmp_path):
        if request.param == "fs":
            return FSStore(str(tmp_path / "fs"))
        if request.param == "taridx":
            return TaridxStore(str(tmp_path / "tar"))
        return KVStore(nservers=3)

    def test_iteration_processes_and_tags(self, store):
        for i in range(5):
            store.write(f"rdf/live/f{i}", b"x" * 10)
        mgr = RdfAggregator(store)
        report = mgr.run_iteration(now=1.0)
        assert report.n_items == 5
        assert mgr.reported == [50]
        assert store.keys("rdf/live/") == []
        assert len(store.keys("rdf/done/")) == 5

    def test_cost_scales_with_new_items_only(self, store):
        # After tagging, reprocessing shouldn't see old frames — the
        # §4.4 scalability property.
        for i in range(5):
            store.write(f"rdf/live/f{i}", b"x")
        mgr = RdfAggregator(store)
        mgr.run_iteration()
        store.write("rdf/live/new", b"y")
        report = mgr.run_iteration()
        assert report.n_items == 1

    def test_empty_iteration_reports_zero(self, store):
        mgr = RdfAggregator(store)
        report = mgr.run_iteration()
        assert report.n_items == 0
        assert mgr.reported == []  # nothing aggregated

    def test_reports_accumulate(self, store):
        mgr = RdfAggregator(store)
        mgr.run_iteration()
        mgr.run_iteration()
        assert len(mgr.reports) == 2
        assert mgr.total_items == 0

    def test_timing_fields_sane(self, store):
        for i in range(3):
            store.write(f"rdf/live/f{i}", b"abc")
        mgr = RdfAggregator(store)
        rep = mgr.run_iteration(now=7.0)
        assert rep.time == 7.0
        assert rep.total_seconds >= 0
        assert rep.total_seconds == pytest.approx(
            rep.collect_seconds + rep.process_seconds + rep.tag_seconds
        )

    def test_prefix_validation(self, store):
        with pytest.raises(ValueError):
            StoreFeedbackMixin(store, "rdf/live", "rdf/done/")
