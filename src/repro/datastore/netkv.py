"""A networked KV server/client: the Redis substitute over real sockets.

The in-process :mod:`~repro.datastore.kvstore` models the cluster's
semantics; this module provides the same operations over actual TCP so
deployments where components live in different processes (the paper's
WM + thousands of simulation jobs) exercise a real wire protocol.

Protocol (text header + raw payload, one request per round trip)::

    request : <CMD> [args...] <payload_len>\\n<payload bytes>
    response: OK <len>\\n<payload>   |   NF\\n   |   ERR <message>\\n

Commands: PING, SET key, GET key, DEL key, KEYS prefix, RENAME src dst,
LEN, FLUSH, SHUTDOWN. A :class:`NetKVCluster` client routes keys over
several servers with the same hash-slot rule as the in-process cluster.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Dict, List, Optional, Tuple

from repro.datastore.base import DataStore, KeyNotFound, StoreError, validate_key
from repro.datastore.kvstore import KVServer, key_slot

__all__ = ["NetKVServer", "NetKVClient", "NetKVCluster", "NetKVStore"]

_MAX_HEADER = 4096


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            raise StoreError("connection closed mid-payload")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_line(sock: socket.socket) -> bytes:
    """Read up to and including a newline, byte by byte (headers are tiny)."""
    buf = bytearray()
    while len(buf) < _MAX_HEADER:
        b = sock.recv(1)
        if not b:
            raise StoreError("connection closed mid-header")
        if b == b"\n":
            return bytes(buf)
        buf.extend(b)
    raise StoreError("header too long")


class _Handler(socketserver.BaseRequestHandler):
    """One request-response exchange per connection round trip.

    Connections are persistent: the handler loops until the client
    disconnects or sends SHUTDOWN.
    """

    def handle(self) -> None:  # noqa: C901 - a protocol switch is a switch
        server: "NetKVServer" = self.server.owner  # type: ignore[attr-defined]
        sock = self.request
        while True:
            try:
                header = _recv_line(sock)
            except StoreError:
                return  # client went away
            if not header:
                continue
            parts = header.decode("utf-8").split()
            cmd, args = parts[0].upper(), parts[1:]
            try:
                payload = b""
                if cmd in ("SET",) and args:
                    payload = _recv_exact(sock, int(args[-1]))
                    args = args[:-1]
                response = self._dispatch(server, cmd, args, payload)
            except KeyNotFound:
                sock.sendall(b"NF\n")
                continue
            except Exception as exc:  # protocol errors become ERR frames
                msg = str(exc).replace("\n", " ")[:500]
                sock.sendall(f"ERR {msg}\n".encode("utf-8"))
                continue
            if response is None:
                return  # SHUTDOWN
            sock.sendall(f"OK {len(response)}\n".encode("utf-8") + response)

    @staticmethod
    def _dispatch(server: "NetKVServer", cmd: str, args: List[str],
                  payload: bytes) -> Optional[bytes]:
        store = server.backend
        with server.lock:
            if cmd == "PING":
                return b"PONG"
            if cmd == "SET":
                store.set(args[0], payload)
                return b""
            if cmd == "GET":
                return store.get(args[0])
            if cmd == "DEL":
                store.delete(args[0])
                return b""
            if cmd == "KEYS":
                prefix = args[0] if args else ""
                return "\x00".join(sorted(store.scan(prefix))).encode("utf-8")
            if cmd == "RENAME":
                store.rename(args[0], args[1])
                return b""
            if cmd == "LEN":
                return str(len(store)).encode("utf-8")
            if cmd == "FLUSH":
                store.flush()
                return b""
            if cmd == "SHUTDOWN":
                threading.Thread(target=server.stop, daemon=True).start()
                return None
            raise StoreError(f"unknown command {cmd!r}")


class NetKVServer:
    """One networked shard wrapping an in-memory :class:`KVServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.backend = KVServer()
        self.lock = threading.Lock()
        self._tcp = socketserver.ThreadingTCPServer((host, port), _Handler,
                                                    bind_and_activate=True)
        self._tcp.daemon_threads = True
        self._tcp.owner = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._tcp.server_address  # type: ignore[return-value]

    def start(self) -> "NetKVServer":
        self._thread = threading.Thread(target=self._tcp.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()

    def __enter__(self) -> "NetKVServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class NetKVClient:
    """A persistent connection to one shard."""

    def __init__(self, address: Tuple[str, int], timeout: float = 10.0) -> None:
        self.address = address
        self._sock = socket.create_connection(address, timeout=timeout)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def _roundtrip(self, header: str, payload: bytes = b"") -> bytes:
        self._sock.sendall(header.encode("utf-8") + b"\n" + payload)
        status = _recv_line(self._sock).decode("utf-8")
        if status.startswith("OK "):
            return _recv_exact(self._sock, int(status[3:]))
        if status == "NF":
            raise KeyNotFound(header.split()[1] if " " in header else "?")
        raise StoreError(status[4:] if status.startswith("ERR ") else status)

    def ping(self) -> bool:
        return self._roundtrip("PING") == b"PONG"

    def set(self, key: str, value: bytes) -> None:
        self._roundtrip(f"SET {key} {len(value)}", value)

    def get(self, key: str) -> bytes:
        return self._roundtrip(f"GET {key}")

    def delete(self, key: str) -> None:
        self._roundtrip(f"DEL {key}")

    def keys(self, prefix: str = "") -> List[str]:
        raw = self._roundtrip(f"KEYS {prefix}" if prefix else "KEYS")
        return raw.decode("utf-8").split("\x00") if raw else []

    def rename(self, src: str, dst: str) -> None:
        self._roundtrip(f"RENAME {src} {dst}")

    def __len__(self) -> int:
        return int(self._roundtrip("LEN"))

    def shutdown_server(self) -> None:
        self._sock.sendall(b"SHUTDOWN\n")
        self.close()


class NetKVCluster:
    """Slot-routed client over several networked shards."""

    def __init__(self, addresses: List[Tuple[str, int]]) -> None:
        if not addresses:
            raise StoreError("cluster needs at least one server address")
        self.clients = [NetKVClient(addr) for addr in addresses]

    def client_for(self, key: str) -> NetKVClient:
        return self.clients[key_slot(key) % len(self.clients)]

    def set(self, key: str, value: bytes) -> None:
        self.client_for(key).set(key, value)

    def get(self, key: str) -> bytes:
        return self.client_for(key).get(key)

    def delete(self, key: str) -> None:
        self.client_for(key).delete(key)

    def keys(self, prefix: str = "") -> List[str]:
        out: List[str] = []
        for client in self.clients:
            out.extend(client.keys(prefix))
        return sorted(out)

    def rename(self, src: str, dst: str) -> None:
        src_client = self.client_for(src)
        dst_client = self.client_for(dst)
        if src_client is dst_client:
            src_client.rename(src, dst)
        else:
            value = src_client.get(src)
            dst_client.set(dst, value)
            src_client.delete(src)

    def close(self) -> None:
        for client in self.clients:
            client.close()


class NetKVStore(DataStore):
    """DataStore adapter over a :class:`NetKVCluster`.

    Drop-in for the in-process ``kv://`` backend when components run in
    separate processes; the feedback managers work against it unchanged.
    """

    def __init__(self, cluster: NetKVCluster) -> None:
        self.cluster = cluster

    @classmethod
    def connect(cls, addresses: List[Tuple[str, int]]) -> "NetKVStore":
        return cls(NetKVCluster(addresses))

    def write(self, key: str, data: bytes) -> None:
        self.cluster.set(validate_key(key), data)

    def read(self, key: str) -> bytes:
        return self.cluster.get(key)

    def delete(self, key: str) -> None:
        self.cluster.delete(key)

    def keys(self, prefix: str = "") -> List[str]:
        return self.cluster.keys(prefix)

    def move(self, src: str, dst: str) -> None:
        self.cluster.rename(src, validate_key(dst))

    def close(self) -> None:
        self.cluster.close()
