"""Deterministic random-number streams.

Every stochastic component in :mod:`repro` (simulation noise, job
duration jitter, network latency, selector tie-breaking, ...) draws
from its own named child stream of one root seed, so that adding a new
consumer never perturbs the draws of existing ones.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

__all__ = ["RngStream", "spawn_rngs"]


def _hash_name(name: str) -> int:
    """Stable 64-bit hash of a stream name (Python's hash() is salted)."""
    h = 1469598103934665603  # FNV-1a 64-bit offset basis
    for b in name.encode("utf-8"):
        h ^= b
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h


class RngStream:
    """A named factory of independent :class:`numpy.random.Generator` s.

    >>> root = RngStream(seed=7)
    >>> a = root.child("scheduler")
    >>> b = root.child("cg-noise")

    Children with the same (seed, name) are identical across runs;
    children with different names are statistically independent.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: Dict[str, np.random.Generator] = {}

    def child(self, name: str) -> np.random.Generator:
        """Return (and cache) the generator for stream ``name``."""
        if name not in self._cache:
            ss = np.random.SeedSequence(entropy=self.seed, spawn_key=(_hash_name(name),))
            self._cache[name] = np.random.default_rng(ss)
        return self._cache[name]

    def fresh_child(self, name: str) -> np.random.Generator:
        """Return a new generator for ``name`` reset to its initial state."""
        ss = np.random.SeedSequence(entropy=self.seed, spawn_key=(_hash_name(name),))
        gen = np.random.default_rng(ss)
        self._cache[name] = gen
        return gen

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStream(seed={self.seed}, streams={sorted(self._cache)})"


def spawn_rngs(seed: int, names: Iterable[str]) -> Dict[str, np.random.Generator]:
    """Convenience: build a dict of independent generators in one call."""
    root = RngStream(seed)
    return {name: root.child(name) for name in names}
