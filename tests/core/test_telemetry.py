"""Tests for workflow telemetry collection and rendering."""

import pytest

from repro.app.builder import build_application
from repro.core.telemetry import TelemetryReport, collect_telemetry, render_report
from repro.core.wm import WorkflowConfig


@pytest.fixture(scope="module")
def app():
    application = build_application(
        store_url="kv://2",
        workflow=WorkflowConfig(beads_per_type=8, cg_chunks_per_job=2,
                                cg_steps_per_chunk=10, aa_chunks_per_job=1,
                                aa_steps_per_chunk=10, seed=0),
        seed=0,
    )
    application.run(nrounds=2)
    return application


class TestCollect:
    def test_snapshot_fields(self, app):
        rep = collect_telemetry(app.wm)
        assert rep.rounds == 2
        assert rep.counters["snapshots"] == 2
        assert set(rep.trackers) == {"createsim", "cg-sim", "backmap", "aa-sim"}

    def test_io_volume_positive(self, app):
        rep = collect_telemetry(app.wm)
        assert rep.data_written() > 0
        assert rep.store_io["writes"] > 0

    def test_jobs_completed_matches_trackers(self, app):
        rep = collect_telemetry(app.wm)
        assert rep.jobs_completed() == sum(
            len(t.completed) for t in app.wm.trackers.values()
        )
        assert rep.jobs_completed() > 0

    def test_feedback_rows_per_manager(self, app):
        rep = collect_telemetry(app.wm)
        names = {row["manager"] for row in rep.feedback}
        assert names == {"CGToContinuumFeedback", "AAToCGFeedback"}
        assert rep.feedback_items() >= 0

    def test_selector_summary(self, app):
        rep = collect_telemetry(app.wm)
        assert rep.selectors["patch_selected"] > 0
        assert 0 <= rep.selectors["frame_bin_coverage"] <= 1

    def test_lock_stats_present(self, app):
        rep = collect_telemetry(app.wm)
        assert rep.lock_stats["acquisitions"] > 0


class TestPartialSnapshots:
    """The reducers tolerate snapshots from backends/trackers that don't
    report every key (e.g. a custom store whose stats dict is minimal)."""

    @staticmethod
    def _report(store_io, trackers):
        return TelemetryReport(
            rounds=0, counters={}, lock_stats={}, trackers=trackers,
            store_io=store_io, feedback=[], selectors={},
        )

    def test_data_written_missing_key_is_zero(self):
        rep = self._report(store_io={"writes": 3}, trackers={})
        assert rep.data_written() == 0

    def test_data_written_present_key(self):
        rep = self._report(store_io={"bytes_written": 123}, trackers={})
        assert rep.data_written() == 123

    def test_jobs_completed_missing_key_counts_zero(self):
        rep = self._report(
            store_io={},
            trackers={"cg-sim": {"completed": 4}, "custom": {"active": 1}},
        )
        assert rep.jobs_completed() == 4

    def test_empty_report_reducers(self):
        rep = self._report(store_io={}, trackers={})
        assert rep.data_written() == 0
        assert rep.jobs_completed() == 0
        assert rep.feedback_items() == 0
        assert rep.trace == {}


class TestRender:
    def test_render_contains_key_sections(self, app):
        text = render_report(collect_telemetry(app.wm))
        for token in ("pipeline counters", "job trackers", "store I/O",
                      "feedback", "selectors", "locking"):
            assert token in text

    def test_render_is_multiline_prose(self, app):
        text = render_report(collect_telemetry(app.wm))
        assert len(text.splitlines()) > 10
