"""FSStore-specific behaviour: armoring, backups, fault injection."""

import os

import numpy as np
import pytest

from repro.datastore.fsstore import FaultInjector, FSStore
from repro.util.armor import ArmorError, RetryPolicy


class TestFaultInjector:
    def test_rate_one_always_fails(self):
        inj = FaultInjector(rate=1.0)
        with pytest.raises(OSError):
            inj("write", "k")
        assert inj.injected == 1

    def test_rate_zero_never_fails(self):
        inj = FaultInjector(rate=0.0)
        for _ in range(100):
            inj("write", "k")
        assert inj.injected == 0

    def test_op_filter(self):
        inj = FaultInjector(rate=1.0, ops=("write",))
        inj("read", "k")  # not in ops -> no fault
        with pytest.raises(OSError):
            inj("write", "k")

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            FaultInjector(rate=1.5)

    def test_deterministic_given_seed(self):
        a = FaultInjector(0.5, rng=np.random.default_rng(1))
        b = FaultInjector(0.5, rng=np.random.default_rng(1))
        pattern_a, pattern_b = [], []
        for pattern, inj in ((pattern_a, a), (pattern_b, b)):
            for _ in range(50):
                try:
                    inj("write", "k")
                    pattern.append(0)
                except OSError:
                    pattern.append(1)
        assert pattern_a == pattern_b


class TestArmoring:
    def test_retries_absorb_transient_faults(self, tmp_path):
        # 40% failure rate with 5 retries: writes should virtually always land.
        inj = FaultInjector(0.4, rng=np.random.default_rng(7))
        store = FSStore(
            str(tmp_path), policy=RetryPolicy(retries=8), fault_injector=inj
        )
        for i in range(50):
            store.write(f"k{i}", b"payload")
        assert len(store.keys()) == 50
        assert store.retries > 0  # the armor actually did work

    def test_unarmored_equivalent_fails(self, tmp_path):
        inj = FaultInjector(1.0)
        store = FSStore(str(tmp_path), policy=RetryPolicy(retries=2), fault_injector=inj)
        with pytest.raises(ArmorError):
            store.write("k", b"x")


class TestBackups:
    def test_backup_kept_on_overwrite(self, tmp_path):
        store = FSStore(str(tmp_path), backup_writes=True)
        store.write("ckpt", b"v1")
        store.write("ckpt", b"v2")
        assert os.path.exists(os.path.join(str(tmp_path), "ckpt.bak"))

    def test_read_falls_back_to_backup(self, tmp_path):
        store = FSStore(str(tmp_path), backup_writes=True)
        store.write("ckpt", b"v1")
        store.write("ckpt", b"v2")
        os.remove(os.path.join(str(tmp_path), "ckpt"))
        assert store.read("ckpt") == b"v1"

    def test_backup_files_hidden_from_keys(self, tmp_path):
        store = FSStore(str(tmp_path), backup_writes=True)
        store.write("ckpt", b"v1")
        store.write("ckpt", b"v2")
        assert store.keys() == ["ckpt"]

    def test_delete_removes_backup_too(self, tmp_path):
        store = FSStore(str(tmp_path), backup_writes=True)
        store.write("ckpt", b"v1")
        store.write("ckpt", b"v2")
        store.delete("ckpt")
        assert store.keys() == []
        assert not os.path.exists(os.path.join(str(tmp_path), "ckpt.bak"))


class TestLayout:
    def test_nested_keys_become_directories(self, tmp_path):
        store = FSStore(str(tmp_path))
        store.write("a/b/c", b"x")
        assert os.path.isfile(os.path.join(str(tmp_path), "a", "b", "c"))

    def test_nfiles_counts_inodes(self, tmp_path):
        store = FSStore(str(tmp_path))
        for i in range(10):
            store.write(f"dir/{i}", b"x")
        assert store.nfiles() == 10


class TestDurability:
    """Regression for the atomic-write gap: without the fsync path a
    writer killed mid-burst could leave an *acked* key empty or torn
    (data in the page cache, rename already visible). With
    ``fsync=True`` every key acked to the caller must read back intact
    after a SIGKILL."""

    WRITER = """
import sys
from repro.datastore.fsstore import FSStore

store = FSStore(sys.argv[1], fsync=True)
i = 0
while True:
    key = "burst/k%05d" % i
    store.write(key, ("value-%06d." % i).encode() * 64)
    print(key, flush=True)  # ack only after write() returned
    i += 1
"""

    @pytest.mark.persist
    @pytest.mark.timeout(60)
    def test_acked_writes_survive_sigkill(self, tmp_path):
        import signal
        import subprocess
        import sys
        import time

        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        proc = subprocess.Popen(
            [sys.executable, "-c", self.WRITER, str(tmp_path)],
            stdout=subprocess.PIPE,
            env={**os.environ, "PYTHONPATH": src},
        )
        acked = []
        try:
            deadline = time.monotonic() + 20.0
            while len(acked) < 25 and time.monotonic() < deadline:
                line = proc.stdout.readline().decode().strip()
                if line:
                    acked.append(line)
            assert len(acked) >= 25, "writer produced too few acks"
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
            # Acks already buffered when the kill landed still count.
            for line in proc.stdout.read().decode().splitlines():
                if line.strip():
                    acked.append(line.strip())
        finally:
            proc.stdout.close()
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        store = FSStore(str(tmp_path))
        for i, key in enumerate(acked):
            data = store.read(key)
            assert data == ("value-%06d." % i).encode() * 64, (
                f"acked key {key} torn or lost after SIGKILL")

    def test_fsync_path_still_atomic(self, tmp_path):
        # The fsync branch must not change observable semantics.
        store = FSStore(str(tmp_path), fsync=True)
        store.write("k", b"v1")
        store.write("k", b"v2")
        assert store.read("k") == b"v2"
        assert store.keys() == ["k"]
        assert not os.path.exists(os.path.join(str(tmp_path), "k.tmp"))
