"""Fig. 8: AA→CG feedback iteration time vs number of frames.

Paper: each AA frame needs ~2 s of external-module processing (two
system calls); with phased processing and worker pools, "more than 97%
of the feedback iterations finished within 10 minutes", and beyond
~1600 frames "the performance scaled linearly".

We run the real :class:`AAToCGFeedback` manager over the same frame
sweep with the external call's cost dialled down by 1000× (2 ms instead
of 2 s) and the paper's effective parallelism, then report both the
measured times and their at-scale projection.
"""

import time

import numpy as np
from conftest import report

from repro.app.feedback import AAToCGFeedback
from repro.datastore import KVStore
from repro.sims.cg.forcefield import martini_like

FRAME_COUNTS = [100, 400, 800, 1600, 3200, 7000]
COST_SCALE = 1000.0  # we run 2 ms per frame standing for the paper's 2 s
PER_FRAME_SECONDS = 2.0 / COST_SCALE
POOL_SIZE = 16


def costed_processor(pattern: str) -> str:
    """Stand-in for the paper's external module: fixed per-frame cost."""
    time.sleep(PER_FRAME_SECONDS)
    return pattern


def _one_iteration(n_frames: int) -> float:
    store = KVStore(nservers=4)
    ff = martini_like(2)
    patterns = ["HHCC", "HHEE", "HHHH", "CCCC"]
    for i in range(n_frames):
        store.write(f"ss/live/f{i:06d}", patterns[i % 4].encode())
    mgr = AAToCGFeedback(
        store, ff, external_processor=costed_processor, pool_size=POOL_SIZE
    )
    rep = mgr.run_iteration()
    assert rep.n_items == n_frames
    assert ff.version == 1  # the aggregate actually landed
    return rep.total_seconds


def test_fig8_iteration_time_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: [(n, _one_iteration(n)) for n in FRAME_COUNTS],
        rounds=1, iterations=1,
    )
    lines = [f"{'frames':>7} {'measured(s)':>12} {'at-scale(min)':>14}"]
    projected = []
    for n, t in rows:
        at_scale_min = t * COST_SCALE / 60.0
        projected.append((n, at_scale_min))
        lines.append(f"{n:>7,} {t:>12.2f} {at_scale_min:>14.1f}")
    lines += [
        "",
        f"external call: {PER_FRAME_SECONDS*COST_SCALE:.0f} s/frame at scale, "
        f"pool of {POOL_SIZE} workers",
        "paper: >97% of iterations within ~10 min; linear beyond ~1600 frames",
    ]
    report("fig8_aa_feedback", lines)

    ns = np.array([n for n, _ in projected], dtype=float)
    mins = np.array([m for _, m in projected])
    # The paper's target: iterations up to ~1600 frames fit in ~10 min.
    assert all(m <= 10.0 for n, m in projected if n <= 1600)
    # Beyond that the time grows, but linearly (per-frame cost flat).
    per_frame = mins / ns
    assert per_frame[-1] / per_frame[1] < 2.0
    assert mins[-1] > 10.0  # the big iterations do exceed the target


def test_fig8_pool_bounds_iteration_time(benchmark):
    """The worker pool is what contains the per-iteration time: a serial
    pass over the same frames is ~pool-size slower."""

    def compare():
        times = {}
        for pool in (1, POOL_SIZE):
            store = KVStore(nservers=2)
            ff = martini_like(2)
            for i in range(200):
                store.write(f"ss/live/f{i:04d}", b"HHCC")
            mgr = AAToCGFeedback(store, ff, external_processor=costed_processor,
                                 pool_size=pool)
            times[pool] = mgr.run_iteration().total_seconds
        return times

    times = benchmark.pedantic(compare, rounds=1, iterations=1)
    speedup = times[1] / times[POOL_SIZE]
    report("fig8_pool_ablation", [
        f"200 frames: serial {times[1]:.2f}s vs pool({POOL_SIZE}) "
        f"{times[POOL_SIZE]:.2f}s -> {speedup:.1f}x speedup",
    ])
    assert speedup > POOL_SIZE * 0.4  # pool parallelism is real
